//! Sliding-window linear trend model ("simple regression techniques",
//! paper §3).
//!
//! The model fits `value = a + b·t` by least squares over a training
//! window and extrapolates the line. The sensor-side replica maintains
//! the same fit incrementally over its own recent window using running
//! sums, so a check is O(1).

use std::collections::VecDeque;

use presto_sim::SimTime;

use crate::traits::{ModelKind, Prediction, Predictor, TrainReport};

/// Linear trend `value ≈ intercept + slope · (t − t0)` with `t` in hours.
#[derive(Clone, Debug)]
pub struct LinearTrendModel {
    intercept: f64,
    slope: f64,
    /// Reference time for the fit, in hours.
    t0_hours: f64,
    sigma: f64,
    /// Recent (hours, value) pairs for online refits at the sensor.
    window: VecDeque<(f64, f64)>,
    /// Maximum window length maintained online.
    window_cap: usize,
}

/// Least-squares line fit; returns `(intercept, slope, residual_sigma)`
/// relative to the first timestamp.
fn fit(points: &[(f64, f64)]) -> (f64, f64, f64) {
    let n = points.len() as f64;
    if points.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    if points.len() == 1 {
        return (points[0].1, 0.0, 0.0);
    }
    let t0 = points[0].0;
    let (mut st, mut sv, mut stt, mut stv) = (0.0, 0.0, 0.0, 0.0);
    for &(t, v) in points {
        let x = t - t0;
        st += x;
        sv += v;
        stt += x * x;
        stv += x * v;
    }
    let denom = n * stt - st * st;
    let slope = if denom.abs() < 1e-12 {
        0.0
    } else {
        (n * stv - st * sv) / denom
    };
    let intercept = (sv - slope * st) / n;
    let sse: f64 = points
        .iter()
        .map(|&(t, v)| {
            let e = v - (intercept + slope * (t - t0));
            e * e
        })
        .sum();
    (intercept, slope, (sse / n).sqrt())
}

impl LinearTrendModel {
    /// Trains a trend model from timestamped history.
    pub fn train(history: &[(SimTime, f64)]) -> (Self, TrainReport) {
        let points: Vec<(f64, f64)> = history
            .iter()
            .map(|&(t, v)| (t.as_hours_f64(), v))
            .collect();
        let (intercept, slope, sigma) = fit(&points);
        let t0_hours = points.first().map(|p| p.0).unwrap_or(0.0);
        let window_cap = 64;
        let mut window = VecDeque::with_capacity(window_cap);
        for &p in points.iter().rev().take(window_cap) {
            window.push_front(p);
        }
        // ~10 cycles per sample for the running sums, ~100 for the solve.
        let train_cycles = history.len() as u64 * 10 + 100;
        (
            LinearTrendModel {
                intercept,
                slope,
                t0_hours,
                sigma: sigma.max(1e-6),
                window,
                window_cap,
            },
            TrainReport {
                train_cycles,
                residual_sigma: sigma,
                samples: history.len(),
            },
        )
    }

    /// Decodes wire parameters.
    pub fn decode_params(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != 16 {
            return None;
        }
        let f = |o: usize| -> Option<f64> {
            Some(f32::from_le_bytes(bytes[o..o + 4].try_into().ok()?) as f64)
        };
        Some(LinearTrendModel {
            intercept: f(0)?,
            slope: f(4)?,
            t0_hours: f(8)?,
            sigma: f(12)?,
            window: VecDeque::new(),
            window_cap: 64,
        })
    }

    /// Fitted slope in value units per hour.
    pub fn slope_per_hour(&self) -> f64 {
        self.slope
    }
}

impl Predictor for LinearTrendModel {
    fn kind(&self) -> ModelKind {
        ModelKind::LinearTrend
    }

    fn predict(&self, t: SimTime) -> Prediction {
        Prediction {
            value: self.intercept + self.slope * (t.as_hours_f64() - self.t0_hours),
            sigma: self.sigma,
        }
    }

    fn observe(&mut self, t: SimTime, value: f64) {
        self.window.push_back((t.as_hours_f64(), value));
        while self.window.len() > self.window_cap {
            self.window.pop_front();
        }
        // Refit over the window once it has enough points; keeps the
        // sensor replica tracking local drift.
        if self.window.len() >= 8 {
            let pts: Vec<(f64, f64)> = self.window.iter().copied().collect();
            let (i, s, sg) = fit(&pts);
            self.intercept = i;
            self.slope = s;
            self.t0_hours = pts[0].0;
            self.sigma = sg.max(1e-6);
        }
    }

    fn encode_params(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        for v in [self.intercept, self.slope, self.t0_hours, self.sigma] {
            out.extend_from_slice(&(v as f32).to_le_bytes());
        }
        out
    }

    fn check_cycles(&self) -> u64 {
        // Line evaluation + compare + running-sum update.
        45
    }

    fn clone_replica(&self) -> Box<dyn Predictor> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_sim::SimDuration;

    fn ramp_history(hours: u64, slope: f64, base: f64) -> Vec<(SimTime, f64)> {
        (0..hours * 4)
            .map(|i| {
                let t = SimTime::from_mins(i * 15);
                (t, base + slope * t.as_hours_f64())
            })
            .collect()
    }

    #[test]
    fn fits_exact_line() {
        let hist = ramp_history(24, 0.5, 10.0);
        let (m, report) = LinearTrendModel::train(&hist);
        assert!((m.slope_per_hour() - 0.5).abs() < 1e-9);
        assert!(report.residual_sigma < 1e-9);
        let t = SimTime::from_hours(30);
        assert!((m.predict(t).value - (10.0 + 0.5 * 30.0)).abs() < 1e-6);
    }

    #[test]
    fn params_roundtrip() {
        let hist = ramp_history(12, -0.25, 30.0);
        let (m, _) = LinearTrendModel::train(&hist);
        let replica = LinearTrendModel::decode_params(&m.encode_params()).unwrap();
        let t = SimTime::from_hours(14);
        assert!((replica.predict(t).value - m.predict(t).value).abs() < 1e-2);
        assert!(LinearTrendModel::decode_params(&[0; 3]).is_none());
    }

    #[test]
    fn online_refit_tracks_new_trend() {
        let hist = ramp_history(24, 0.5, 10.0);
        let (mut m, _) = LinearTrendModel::train(&hist);
        // Trend reverses; after observing a window of the new regime the
        // model should follow it.
        let start = SimTime::from_hours(24);
        for i in 0..64u64 {
            let t = start + SimDuration::from_mins(i * 15);
            let v = 22.0 - 0.5 * (t.as_hours_f64() - 24.0);
            m.observe(t, v);
        }
        assert!(m.slope_per_hour() < -0.4, "{}", m.slope_per_hour());
    }

    #[test]
    fn degenerate_histories() {
        let (m0, _) = LinearTrendModel::train(&[]);
        assert_eq!(m0.predict(SimTime::from_hours(1)).value, 0.0);
        let (m1, _) = LinearTrendModel::train(&[(SimTime::ZERO, 42.0)]);
        assert_eq!(m1.predict(SimTime::from_hours(5)).value, 42.0);
        // Identical timestamps: slope collapses to zero, no NaN.
        let (m2, _) = LinearTrendModel::train(&[(SimTime::ZERO, 1.0), (SimTime::ZERO, 3.0)]);
        assert!(m2.predict(SimTime::from_hours(1)).value.is_finite());
        assert_eq!(m2.slope_per_hour(), 0.0);
    }

    #[test]
    fn sigma_reflects_scatter() {
        let mut hist = ramp_history(24, 0.0, 20.0);
        for (i, p) in hist.iter_mut().enumerate() {
            p.1 += if i % 2 == 0 { 1.0 } else { -1.0 };
        }
        let (m, _) = LinearTrendModel::train(&hist);
        assert!((m.sigma - 1.0).abs() < 0.05, "{}", m.sigma);
    }
}
