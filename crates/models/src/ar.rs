//! Autoregressive AR(p) time-series model.
//!
//! The "time-series analysis techniques" option of paper §3. Training
//! solves the Yule–Walker equations with the Levinson–Durbin recursion
//! (O(n·p + p²) at the proxy); the sensor-side check is a p-term dot
//! product over the sensor's own recent samples — tiny state, tiny cost.
//!
//! The model assumes regularly spaced samples (PRESTO sensors sample on a
//! fixed epoch), so prediction conditions on the last `p` observations
//! rather than on wall-clock time.

use std::collections::VecDeque;

use presto_sim::SimTime;

use crate::traits::{ModelKind, Prediction, Predictor, TrainReport};

/// AR(p) model over mean-removed values.
#[derive(Clone, Debug)]
pub struct ArModel {
    mean: f64,
    /// φ₁…φₚ, most recent lag first.
    coeffs: Vec<f64>,
    /// Innovation standard deviation.
    sigma: f64,
    /// Last `p` observations, most recent at the front.
    recent: VecDeque<f64>,
}

/// Sample autocovariance at lags `0..=p`.
fn autocovariance(xs: &[f64], mean: f64, p: usize) -> Vec<f64> {
    let n = xs.len();
    (0..=p)
        .map(|lag| {
            if n <= lag {
                return 0.0;
            }
            (0..n - lag)
                .map(|i| (xs[i] - mean) * (xs[i + lag] - mean))
                .sum::<f64>()
                / n as f64
        })
        .collect()
}

/// Levinson–Durbin recursion: solves the Yule–Walker system for AR
/// coefficients, returning `(phi, innovation_variance)`.
fn levinson_durbin(acov: &[f64]) -> (Vec<f64>, f64) {
    let p = acov.len() - 1;
    if p == 0 || acov[0] <= 0.0 {
        return (vec![], acov.first().copied().unwrap_or(0.0).max(0.0));
    }
    let mut phi = vec![0.0; p];
    let mut prev = vec![0.0; p];
    let mut e = acov[0];
    for k in 0..p {
        let mut acc = acov[k + 1];
        for j in 0..k {
            acc -= prev[j] * acov[k - j];
        }
        let reflection = if e.abs() < 1e-12 { 0.0 } else { acc / e };
        phi[..k].copy_from_slice(&prev[..k]);
        phi[k] = reflection;
        for j in 0..k {
            phi[j] = prev[j] - reflection * prev[k - 1 - j];
        }
        e *= 1.0 - reflection * reflection;
        e = e.max(0.0);
        prev[..=k].copy_from_slice(&phi[..=k]);
    }
    (phi, e)
}

impl ArModel {
    /// Trains an AR(`order`) model from history values (timestamps are
    /// assumed regularly spaced; only the value sequence matters).
    pub fn train(history: &[(SimTime, f64)], order: usize) -> (Self, TrainReport) {
        let xs: Vec<f64> = history.iter().map(|&(_, v)| v).collect();
        Self::train_values(&xs, order)
    }

    /// Trains from a plain value sequence.
    pub fn train_values(xs: &[f64], order: usize) -> (Self, TrainReport) {
        let n = xs.len();
        let mean = if n == 0 {
            0.0
        } else {
            xs.iter().sum::<f64>() / n as f64
        };
        let p = order.min(n.saturating_sub(1));
        let acov = autocovariance(xs, mean, p);
        let (coeffs, var) = levinson_durbin(&acov);
        let sigma = var.sqrt().max(1e-6);

        // Seed the prediction context with the tail of the history.
        let mut recent = VecDeque::with_capacity(coeffs.len());
        for &v in xs.iter().rev().take(coeffs.len()) {
            recent.push_back(v);
        }

        // ~6 cycles per (sample × lag) for autocovariance plus ~20·p² for
        // the recursion.
        let train_cycles = (n as u64) * (p as u64 + 1) * 6 + 20 * (p as u64).pow(2);

        (
            ArModel {
                mean,
                coeffs,
                sigma,
                recent,
            },
            TrainReport {
                train_cycles,
                residual_sigma: sigma,
                samples: n,
            },
        )
    }

    /// Decodes a model from wire parameters.
    pub fn decode_params(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 9 {
            return None;
        }
        let p = bytes[0] as usize;
        if bytes.len() != 9 + p * 4 {
            return None;
        }
        let mean = f32::from_le_bytes(bytes[1..5].try_into().ok()?) as f64;
        let sigma = f32::from_le_bytes(bytes[5..9].try_into().ok()?) as f64;
        let mut coeffs = Vec::with_capacity(p);
        for k in 0..p {
            let off = 9 + k * 4;
            coeffs.push(f32::from_le_bytes(bytes[off..off + 4].try_into().ok()?) as f64);
        }
        Some(ArModel {
            mean,
            coeffs,
            sigma,
            recent: VecDeque::new(),
        })
    }

    /// Model order.
    pub fn order(&self) -> usize {
        self.coeffs.len()
    }

    /// The AR coefficients.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// The process mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The innovation standard deviation.
    pub fn innovation_sigma(&self) -> f64 {
        self.sigma
    }

    /// Observation context, most recent first (may hold fewer than
    /// `order` values until warmed up).
    pub fn context(&self) -> impl Iterator<Item = f64> + '_ {
        self.recent.iter().copied()
    }
}

impl Predictor for ArModel {
    fn kind(&self) -> ModelKind {
        ModelKind::Ar
    }

    fn predict(&self, _t: SimTime) -> Prediction {
        if self.recent.len() < self.coeffs.len() || self.coeffs.is_empty() {
            return Prediction {
                value: self.mean,
                sigma: self.sigma.max(1e-6),
            };
        }
        let mut v = self.mean;
        for (k, phi) in self.coeffs.iter().enumerate() {
            v += phi * (self.recent[k] - self.mean);
        }
        Prediction {
            value: v,
            sigma: self.sigma,
        }
    }

    fn observe(&mut self, _t: SimTime, value: f64) {
        self.recent.push_front(value);
        while self.recent.len() > self.coeffs.len().max(1) {
            self.recent.pop_back();
        }
    }

    fn encode_params(&self) -> Vec<u8> {
        let p = self.coeffs.len().min(255);
        let mut out = Vec::with_capacity(9 + p * 4);
        out.push(p as u8);
        out.extend_from_slice(&(self.mean as f32).to_le_bytes());
        out.extend_from_slice(&(self.sigma as f32).to_le_bytes());
        for &c in self.coeffs.iter().take(p) {
            out.extend_from_slice(&(c as f32).to_le_bytes());
        }
        out
    }

    fn check_cycles(&self) -> u64 {
        // One MAC (~8 cycles) per lag plus compare and ring-buffer update.
        10 + 8 * self.coeffs.len() as u64
    }

    fn clone_replica(&self) -> Box<dyn Predictor> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::Verdict;

    /// Generates a deterministic AR(1) sequence with the given φ.
    fn ar1_sequence(n: usize, phi: f64, noise_amp: f64) -> Vec<f64> {
        let mut state = 777u64;
        let mut noise = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 30) as f64 - 1.0) * noise_amp
        };
        let mut xs = Vec::with_capacity(n);
        let mut x = 0.0;
        for _ in 0..n {
            x = phi * x + noise();
            xs.push(x + 20.0); // nonzero mean
        }
        xs
    }

    #[test]
    fn recovers_ar1_coefficient() {
        let xs = ar1_sequence(5000, 0.8, 1.0);
        let (m, _) = ArModel::train_values(&xs, 1);
        assert_eq!(m.order(), 1);
        assert!((m.coeffs()[0] - 0.8).abs() < 0.05, "{}", m.coeffs()[0]);
        assert!((m.mean - 20.0).abs() < 0.5, "{}", m.mean);
    }

    #[test]
    fn prediction_beats_mean_on_correlated_data() {
        let xs = ar1_sequence(3000, 0.9, 1.0);
        let (train, test) = xs.split_at(2500);
        let (mut m, _) = ArModel::train_values(train, 2);
        let mut se_model = 0.0;
        let mut se_mean = 0.0;
        for &v in test {
            let p = m.predict(SimTime::ZERO);
            se_model += (v - p.value) * (v - p.value);
            se_mean += (v - m.mean) * (v - m.mean);
            m.observe(SimTime::ZERO, v);
        }
        assert!(
            se_model < 0.5 * se_mean,
            "model {se_model} vs mean {se_mean}"
        );
    }

    #[test]
    fn innovation_sigma_close_to_noise_level() {
        // AR(1) with uniform(-1,1) noise: innovation σ ≈ 1/√3 ≈ 0.577.
        let xs = ar1_sequence(5000, 0.8, 1.0);
        let (m, report) = ArModel::train_values(&xs, 1);
        assert!((m.sigma - 0.577).abs() < 0.1, "{}", m.sigma);
        assert_eq!(report.residual_sigma, m.sigma);
    }

    #[test]
    fn params_roundtrip_and_replica_agrees() {
        let xs = ar1_sequence(2000, 0.7, 0.5);
        let (m, _) = ArModel::train_values(&xs, 3);
        let bytes = m.encode_params();
        assert_eq!(bytes.len(), 9 + 3 * 4);
        let mut replica = ArModel::decode_params(&bytes).unwrap();
        // Feed the replica the same context, then compare predictions.
        for &v in xs.iter().rev().take(3).collect::<Vec<_>>().iter().rev() {
            replica.observe(SimTime::ZERO, *v);
        }
        let a = m.predict(SimTime::ZERO).value;
        let b = replica.predict(SimTime::ZERO).value;
        assert!((a - b).abs() < 1e-2, "{a} vs {b}");
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(ArModel::decode_params(&[]).is_none());
        assert!(ArModel::decode_params(&[3, 0, 0, 0, 0, 0, 0, 0, 0]).is_none());
    }

    #[test]
    fn cold_replica_falls_back_to_mean() {
        let xs = ar1_sequence(1000, 0.8, 1.0);
        let (m, _) = ArModel::train_values(&xs, 2);
        let replica = ArModel::decode_params(&m.encode_params()).unwrap();
        let p = replica.predict(SimTime::ZERO);
        assert!((p.value - m.mean).abs() < 1e-3);
    }

    #[test]
    fn check_detects_spikes() {
        let xs = ar1_sequence(2000, 0.8, 0.5);
        let (m, _) = ArModel::train_values(&xs, 1);
        let mut replica = m.clone_replica();
        let last = *xs.last().unwrap();
        // A continuation close to the AR prediction conforms.
        let pred = replica.predict(SimTime::ZERO).value;
        assert_eq!(
            replica.check(SimTime::ZERO, pred + 0.1, 2.0),
            Verdict::Conforms
        );
        // A spike far from any plausible continuation deviates.
        match replica.check(SimTime::ZERO, last + 50.0, 2.0) {
            Verdict::Deviates { residual } => assert!(residual > 10.0),
            v => panic!("expected deviation, got {v:?}"),
        }
    }

    #[test]
    fn degenerate_inputs() {
        let (m, r) = ArModel::train_values(&[], 3);
        assert_eq!(m.order(), 0);
        assert_eq!(r.samples, 0);
        let (m1, _) = ArModel::train_values(&[5.0], 3);
        assert_eq!(m1.order(), 0);
        assert_eq!(m1.predict(SimTime::ZERO).value, 5.0);
        // Constant series: zero variance, order collapses gracefully.
        let (mc, _) = ArModel::train_values(&[7.0; 100], 2);
        let p = mc.predict(SimTime::ZERO);
        assert!((p.value - 7.0).abs() < 1e-9);
    }

    #[test]
    fn training_dwarfs_checking() {
        let xs = ar1_sequence(5000, 0.8, 1.0);
        let (m, report) = ArModel::train_values(&xs, 4);
        assert!(report.train_cycles > 1000 * m.check_cycles());
    }

    #[test]
    fn levinson_handles_white_noise() {
        // White noise: all φ ≈ 0.
        let xs = ar1_sequence(5000, 0.0, 1.0);
        let (m, _) = ArModel::train_values(&xs, 3);
        for &c in m.coeffs() {
            assert!(c.abs() < 0.06, "{c}");
        }
    }
}
