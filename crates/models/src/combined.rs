//! Seasonal + AR combined model — PRESTO's default.
//!
//! The seasonal table captures the predictable diurnal shape; an AR model
//! over the *seasonal residuals* captures short-term correlated weather.
//! This is the structure the paper sketches ("time-of-day effects …
//! simple regression and time-series analysis") and the one its authors
//! adopted for the full system. The sensor-side check remains O(1): one
//! table lookup plus a p-term dot product.

use presto_sim::SimTime;

use crate::ar::ArModel;
use crate::seasonal::SeasonalModel;
use crate::traits::{ModelKind, Prediction, Predictor, TrainReport};

/// Seasonal mean with AR(p) residual dynamics.
#[derive(Clone, Debug)]
pub struct SeasonalArModel {
    seasonal: SeasonalModel,
    residual_ar: ArModel,
}

impl SeasonalArModel {
    /// Trains both stages: seasonal bins, then AR over the residuals.
    pub fn train(history: &[(SimTime, f64)], bins: usize, ar_order: usize) -> (Self, TrainReport) {
        let (seasonal, seasonal_report) = SeasonalModel::train(history, bins);
        let residuals: Vec<f64> = history
            .iter()
            .map(|&(t, v)| v - seasonal.predict(t).value)
            .collect();
        let (residual_ar, ar_report) = ArModel::train_values(&residuals, ar_order);
        let report = TrainReport {
            // Residual computation costs another pass over the history.
            train_cycles: seasonal_report.train_cycles
                + ar_report.train_cycles
                + history.len() as u64 * 40,
            residual_sigma: ar_report.residual_sigma,
            samples: history.len(),
        };
        (
            SeasonalArModel {
                seasonal,
                residual_ar,
            },
            report,
        )
    }

    /// Decodes wire parameters (`u16` seasonal length prefix, then the
    /// two stages' encodings).
    pub fn decode_params(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 2 {
            return None;
        }
        let slen = u16::from_le_bytes([bytes[0], bytes[1]]) as usize;
        if bytes.len() < 2 + slen {
            return None;
        }
        let seasonal = SeasonalModel::decode_params(&bytes[2..2 + slen])?;
        let residual_ar = ArModel::decode_params(&bytes[2 + slen..])?;
        Some(SeasonalArModel {
            seasonal,
            residual_ar,
        })
    }

    /// The seasonal stage.
    pub fn seasonal(&self) -> &SeasonalModel {
        &self.seasonal
    }

    /// The AR stage (over residuals).
    pub fn residual_ar(&self) -> &ArModel {
        &self.residual_ar
    }
}

impl Predictor for SeasonalArModel {
    fn kind(&self) -> ModelKind {
        ModelKind::SeasonalAr
    }

    fn predict(&self, t: SimTime) -> Prediction {
        let base = self.seasonal.predict(t);
        let resid = self.residual_ar.predict(t);
        Prediction {
            value: base.value + resid.value,
            sigma: resid.sigma,
        }
    }

    fn observe(&mut self, t: SimTime, value: f64) {
        let base = self.seasonal.predict(t).value;
        self.residual_ar.observe(t, value - base);
        self.seasonal.observe(t, value);
    }

    fn encode_params(&self) -> Vec<u8> {
        let s = self.seasonal.encode_params();
        let a = self.residual_ar.encode_params();
        let mut out = Vec::with_capacity(2 + s.len() + a.len());
        out.extend_from_slice(&(s.len() as u16).to_le_bytes());
        out.extend_from_slice(&s);
        out.extend_from_slice(&a);
        out
    }

    fn check_cycles(&self) -> u64 {
        self.seasonal.check_cycles() + self.residual_ar.check_cycles()
    }

    fn clone_replica(&self) -> Box<dyn Predictor> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_sim::SimDuration;

    /// Diurnal signal + AR(1) weather residual, deterministic.
    fn weather(days: u64, step_mins: u64) -> Vec<(SimTime, f64)> {
        let mut state = 4242u64;
        let mut noise = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 30) as f64 - 1.0) * 0.4
        };
        let mut resid = 0.0;
        let mut out = Vec::new();
        let mut t = SimTime::ZERO;
        let end = SimTime::from_days(days);
        while t < end {
            resid = 0.9 * resid + noise();
            let h = t.hour_of_day();
            let v = 18.0 + 6.0 * ((h - 6.0) / 24.0 * std::f64::consts::TAU).sin() + resid;
            out.push((t, v));
            t += SimDuration::from_mins(step_mins);
        }
        out
    }

    #[test]
    fn combined_beats_seasonal_at_one_step() {
        // With every sample observed, the AR stage soaks up the weather
        // residual the seasonal table cannot represent.
        let hist = weather(14, 10);
        let (train, test) = hist.split_at(hist.len() * 3 / 4);

        let (mut combined, _) = SeasonalArModel::train(train, 24, 2);
        let (mut seasonal, _) = SeasonalModel::train(train, 24);

        let (mut se_c, mut se_s) = (0.0f64, 0.0f64);
        for &(t, v) in test {
            let pc = combined.predict(t).value;
            let ps = seasonal.predict(t).value;
            se_c += (v - pc) * (v - pc);
            se_s += (v - ps) * (v - ps);
            combined.observe(t, v);
            seasonal.observe(t, v);
        }
        assert!(se_c < se_s, "combined {se_c} vs seasonal {se_s}");
    }

    #[test]
    fn combined_beats_plain_ar_over_long_horizons() {
        // With *no* observations during the test window (the situation a
        // proxy is in when a sensor goes quiet under model-driven push),
        // plain AR degenerates to persistence/mean while the seasonal
        // stage keeps tracking the diurnal swing.
        let hist = weather(14, 10);
        let (train, test) = hist.split_at(hist.len() * 3 / 4);

        let (combined, _) = SeasonalArModel::train(train, 24, 2);
        let (ar, _) = ArModel::train(train, 2);

        let (mut se_c, mut se_a) = (0.0f64, 0.0f64);
        for &(t, v) in test {
            let pc = combined.predict(t).value;
            let pa = ar.predict(t).value;
            se_c += (v - pc) * (v - pc);
            se_a += (v - pa) * (v - pa);
            // No observe(): the sensors are silent.
        }
        assert!(se_c < 0.5 * se_a, "combined {se_c} vs ar {se_a}");
    }

    #[test]
    fn params_roundtrip() {
        let hist = weather(7, 15);
        let (m, _) = SeasonalArModel::train(&hist, 24, 2);
        let bytes = m.encode_params();
        let replica = SeasonalArModel::decode_params(&bytes).unwrap();
        assert_eq!(replica.residual_ar().order(), 2);
        let t = SimTime::from_days(8) + SimDuration::from_hours(15);
        // Cold replica: seasonal part matches; AR context differs until
        // the replica observes data.
        let a = m.seasonal().predict(t).value;
        let b = replica.seasonal().predict(t).value;
        assert!((a - b).abs() < 1e-2);
        assert!(SeasonalArModel::decode_params(&[5]).is_none());
        assert!(SeasonalArModel::decode_params(&[255, 255, 0]).is_none());
    }

    #[test]
    fn replica_tracks_after_warmup() {
        let hist = weather(10, 10);
        let (m, _) = SeasonalArModel::train(&hist, 24, 2);
        let mut replica = SeasonalArModel::decode_params(&m.encode_params()).unwrap();
        // Warm the replica with the last few true samples, then compare
        // next-step predictions against held-out truth.
        let (warm, test) = hist.split_at(hist.len() - 20);
        for &(t, v) in warm.iter().rev().take(10).collect::<Vec<_>>().iter().rev() {
            replica.observe(*t, *v);
        }
        let mut err = 0.0;
        for &(t, v) in test {
            err += (replica.predict(t).value - v).abs();
            replica.observe(t, v);
        }
        assert!(err / 20.0 < 1.0, "mean err {}", err / 20.0);
    }

    #[test]
    fn report_accounts_for_both_stages() {
        let hist = weather(7, 10);
        let (m, report) = SeasonalArModel::train(&hist, 24, 3);
        assert!(report.train_cycles > hist.len() as u64 * 40);
        assert!(report.train_cycles > 1000 * m.check_cycles());
        assert_eq!(report.samples, hist.len());
    }

    #[test]
    fn residual_sigma_below_raw_sigma() {
        let hist = weather(14, 10);
        let (_, combined) = SeasonalArModel::train(&hist, 24, 2);
        let (_, seasonal_only) = SeasonalModel::train(&hist, 24);
        assert!(combined.residual_sigma < seasonal_only.residual_sigma);
    }
}
