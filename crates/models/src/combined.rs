//! Seasonal + AR combined model — PRESTO's default.
//!
//! The seasonal table captures the predictable diurnal shape; an AR model
//! over the *seasonal residuals* captures short-term correlated weather.
//! This is the structure the paper sketches ("time-of-day effects …
//! simple regression and time-series analysis") and the one its authors
//! adopted for the full system. The sensor-side check remains O(1): one
//! table lookup plus a p-term dot product.
//!
//! The optional **per-bin AR refinement** ([`SeasonalArModel::train_binned`])
//! fits bin-specific lag coefficients — residual dynamics often differ by
//! time of day (calm nights, convective afternoons). Its normal equations
//! share one Gram matrix across every bin (the residual lag covariance is
//! stationary once the seasonal mean is removed; only the per-bin
//! cross-covariance differs), so the Cholesky factor is computed **once**
//! and reused for every bin's solve. The naive formulation — rebuilding
//! and re-factorizing the same Gram per bin — is kept as
//! [`SeasonalArModel::train_binned_refactorized`] to pin numerical
//! equivalence and benchmark the reuse win.

use presto_sim::SimTime;

use crate::ar::ArModel;
use crate::linalg::Matrix;
use crate::seasonal::SeasonalModel;
use crate::traits::{ModelKind, Prediction, Predictor, TrainReport};

/// Per-bin AR lag coefficients refined over the seasonal residuals.
#[derive(Clone, Debug)]
struct BinnedAr {
    /// Lag order shared by every bin.
    order: usize,
    /// Row-major `[bins × order]` coefficients.
    coeffs: Vec<f64>,
}

/// Seasonal mean with AR(p) residual dynamics.
#[derive(Clone, Debug)]
pub struct SeasonalArModel {
    seasonal: SeasonalModel,
    residual_ar: ArModel,
    /// Optional per-bin refinement; `None` falls back to the global AR.
    binned: Option<BinnedAr>,
}

impl SeasonalArModel {
    /// Trains both stages: seasonal bins, then AR over the residuals.
    pub fn train(history: &[(SimTime, f64)], bins: usize, ar_order: usize) -> (Self, TrainReport) {
        let (seasonal, seasonal_report) = SeasonalModel::train(history, bins);
        let residuals: Vec<f64> = history
            .iter()
            .map(|&(t, v)| v - seasonal.predict(t).value)
            .collect();
        let (residual_ar, ar_report) = ArModel::train_values(&residuals, ar_order);
        let report = TrainReport {
            // Residual computation costs another pass over the history.
            train_cycles: seasonal_report.train_cycles
                + ar_report.train_cycles
                + history.len() as u64 * 40,
            residual_sigma: ar_report.residual_sigma,
            samples: history.len(),
        };
        (
            SeasonalArModel {
                seasonal,
                residual_ar,
                binned: None,
            },
            report,
        )
    }

    /// Trains with the per-bin AR refinement, reusing one shared
    /// Cholesky factor for every bin's normal-equation solve.
    pub fn train_binned(
        history: &[(SimTime, f64)],
        bins: usize,
        ar_order: usize,
    ) -> (Self, TrainReport) {
        Self::train_binned_impl(history, bins, ar_order, true)
    }

    /// The naive reference formulation of [`Self::train_binned`]: the
    /// *same* Gram matrix is rebuilt and re-factorized for every bin.
    /// Numerically identical output, ~`bins`× the normal-equation work —
    /// kept for the equivalence test and the criterion datapoint that
    /// documents the factor-reuse speedup.
    pub fn train_binned_refactorized(
        history: &[(SimTime, f64)],
        bins: usize,
        ar_order: usize,
    ) -> (Self, TrainReport) {
        Self::train_binned_impl(history, bins, ar_order, false)
    }

    fn train_binned_impl(
        history: &[(SimTime, f64)],
        bins: usize,
        ar_order: usize,
        share_factor: bool,
    ) -> (Self, TrainReport) {
        let (mut model, mut report) = Self::train(history, bins, ar_order);
        let p = model.residual_ar.order();
        if p == 0 || history.len() <= p + 1 {
            return (model, report);
        }
        let residuals: Vec<f64> = history
            .iter()
            .map(|&(t, v)| v - model.seasonal.predict(t).value)
            .collect();
        let n_rows = residuals.len() - p;

        // Per-bin cross-covariance (RHS of the normal equations) and
        // sample counts — one pass regardless of formulation.
        let mut rhs = vec![0.0f64; bins * p];
        let mut bin_n = vec![0u64; bins];
        for i in p..residuals.len() {
            let b = model.seasonal.bin_index(history[i].0);
            bin_n[b] += 1;
            for k in 0..p {
                rhs[b * p + k] += residuals[i - 1 - k] * residuals[i];
            }
        }

        // The Gram matrix (lag covariance of the residual process) is
        // the SAME for every bin: build Σ x·xᵀ once…
        let build_gram = |acc: &mut u64| -> Matrix {
            *acc += n_rows as u64 * (p * p) as u64 * 6;
            let mut g = Matrix::zeros(p, p);
            for i in p..residuals.len() {
                for a in 0..p {
                    for b in 0..=a {
                        g[(a, b)] += residuals[i - 1 - a] * residuals[i - 1 - b];
                    }
                }
            }
            for a in 0..p {
                for b in a + 1..p {
                    g[(a, b)] = g[(b, a)];
                }
            }
            // Normalize to a covariance and ridge it SPD.
            let mut trace = 0.0;
            for a in 0..p {
                g[(a, a)] /= n_rows as f64;
                trace += g[(a, a)];
            }
            for a in 0..p {
                for b in 0..p {
                    if a != b {
                        g[(a, b)] /= n_rows as f64;
                    }
                }
                g[(a, a)] += 1e-9 * (trace / p as f64).max(1e-12) + 1e-12;
            }
            g
        };

        let mut extra_cycles = 0u64;
        let chol_cycles = (p as u64).pow(3) * 2 + 10;
        let solve_cycles = (p as u64).pow(2) * 4 + 10;
        let mut coeffs = vec![0.0f64; bins * p];
        let mut ok = true;

        if share_factor {
            // …factor it once, then back-substitute per bin.
            let gram = build_gram(&mut extra_cycles);
            extra_cycles += chol_cycles;
            match gram.cholesky() {
                Some(l) => {
                    for b in 0..bins {
                        if bin_n[b] == 0 {
                            coeffs[b * p..(b + 1) * p]
                                .copy_from_slice(&model.residual_ar.coeffs()[..p]);
                            continue;
                        }
                        let c: Vec<f64> = (0..p)
                            .map(|k| rhs[b * p + k] / bin_n[b] as f64)
                            .collect();
                        extra_cycles += solve_cycles;
                        let phi = l.solve_cholesky(&c);
                        coeffs[b * p..(b + 1) * p].copy_from_slice(&phi);
                    }
                }
                None => ok = false,
            }
        } else {
            // Naive reference: rebuild + re-factorize the identical Gram
            // for every bin.
            for b in 0..bins {
                if bin_n[b] == 0 {
                    coeffs[b * p..(b + 1) * p].copy_from_slice(&model.residual_ar.coeffs()[..p]);
                    continue;
                }
                let gram = build_gram(&mut extra_cycles);
                extra_cycles += chol_cycles + solve_cycles;
                let c: Vec<f64> = (0..p)
                    .map(|k| rhs[b * p + k] / bin_n[b] as f64)
                    .collect();
                match gram.solve_spd(&c) {
                    Some(phi) => coeffs[b * p..(b + 1) * p].copy_from_slice(&phi),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
        }

        report.train_cycles += extra_cycles;
        if ok {
            model.binned = Some(BinnedAr { order: p, coeffs });
        }
        (model, report)
    }

    /// True when the per-bin refinement is installed.
    pub fn is_binned(&self) -> bool {
        self.binned.is_some()
    }

    /// Per-bin coefficients (`[bins × order]`, row-major) when binned.
    pub fn bin_coeffs(&self) -> Option<&[f64]> {
        self.binned.as_ref().map(|b| b.coeffs.as_slice())
    }

    /// Decodes wire parameters (`u16` seasonal length prefix, the
    /// seasonal stage, `u16` AR length prefix, the AR stage, then an
    /// optional per-bin coefficient block: `u16` bin count, `u8` order,
    /// `f32` coefficients).
    pub fn decode_params(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 2 {
            return None;
        }
        let slen = u16::from_le_bytes([bytes[0], bytes[1]]) as usize;
        if bytes.len() < 2 + slen + 2 {
            return None;
        }
        let seasonal = SeasonalModel::decode_params(&bytes[2..2 + slen])?;
        let aoff = 2 + slen;
        let alen = u16::from_le_bytes([bytes[aoff], bytes[aoff + 1]]) as usize;
        if bytes.len() < aoff + 2 + alen + 3 {
            return None;
        }
        let residual_ar = ArModel::decode_params(&bytes[aoff + 2..aoff + 2 + alen])?;
        let boff = aoff + 2 + alen;
        let nbins = u16::from_le_bytes([bytes[boff], bytes[boff + 1]]) as usize;
        let order = bytes[boff + 2] as usize;
        let binned = if nbins == 0 || order == 0 {
            if bytes.len() != boff + 3 {
                return None;
            }
            None
        } else {
            if nbins != seasonal.bins() || bytes.len() != boff + 3 + nbins * order * 4 {
                return None;
            }
            let mut coeffs = Vec::with_capacity(nbins * order);
            for k in 0..nbins * order {
                let off = boff + 3 + k * 4;
                coeffs.push(f32::from_le_bytes(bytes[off..off + 4].try_into().ok()?) as f64);
            }
            Some(BinnedAr { order, coeffs })
        };
        Some(SeasonalArModel {
            seasonal,
            residual_ar,
            binned,
        })
    }

    /// The seasonal stage.
    pub fn seasonal(&self) -> &SeasonalModel {
        &self.seasonal
    }

    /// The AR stage (over residuals).
    pub fn residual_ar(&self) -> &ArModel {
        &self.residual_ar
    }
}

impl Predictor for SeasonalArModel {
    fn kind(&self) -> ModelKind {
        ModelKind::SeasonalAr
    }

    fn predict(&self, t: SimTime) -> Prediction {
        let base = self.seasonal.predict(t);
        // Per-bin refinement: the bin's own lag coefficients over the
        // shared residual context. Falls back to the global AR until the
        // context is warm.
        if let Some(binned) = &self.binned {
            // Allocation-free dot product straight off the context
            // iterator: this runs per sensor-side model check.
            let bin = self.seasonal.bin_index(t);
            let mean = self.residual_ar.mean();
            let mut resid = mean;
            let mut warm = 0usize;
            for (k, x) in self.residual_ar.context().take(binned.order).enumerate() {
                resid += binned.coeffs[bin * binned.order + k] * (x - mean);
                warm += 1;
            }
            if warm == binned.order && binned.order > 0 {
                return Prediction {
                    value: base.value + resid,
                    sigma: self.residual_ar.innovation_sigma(),
                };
            }
        }
        let resid = self.residual_ar.predict(t);
        Prediction {
            value: base.value + resid.value,
            sigma: resid.sigma,
        }
    }

    fn observe(&mut self, t: SimTime, value: f64) {
        let base = self.seasonal.predict(t).value;
        self.residual_ar.observe(t, value - base);
        self.seasonal.observe(t, value);
    }

    fn encode_params(&self) -> Vec<u8> {
        let s = self.seasonal.encode_params();
        let a = self.residual_ar.encode_params();
        let blen = self
            .binned
            .as_ref()
            .map_or(0, |b| b.coeffs.len() * 4);
        let mut out = Vec::with_capacity(2 + s.len() + 2 + a.len() + 3 + blen);
        out.extend_from_slice(&(s.len() as u16).to_le_bytes());
        out.extend_from_slice(&s);
        out.extend_from_slice(&(a.len() as u16).to_le_bytes());
        out.extend_from_slice(&a);
        match &self.binned {
            Some(b) => {
                out.extend_from_slice(&(self.seasonal.bins() as u16).to_le_bytes());
                out.push(b.order as u8);
                for &c in &b.coeffs {
                    out.extend_from_slice(&(c as f32).to_le_bytes());
                }
            }
            None => {
                out.extend_from_slice(&0u16.to_le_bytes());
                out.push(0);
            }
        }
        out
    }

    fn check_cycles(&self) -> u64 {
        self.seasonal.check_cycles() + self.residual_ar.check_cycles()
    }

    fn clone_replica(&self) -> Box<dyn Predictor> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_sim::SimDuration;

    /// Diurnal signal + AR(1) weather residual, deterministic.
    fn weather(days: u64, step_mins: u64) -> Vec<(SimTime, f64)> {
        let mut state = 4242u64;
        let mut noise = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 30) as f64 - 1.0) * 0.4
        };
        let mut resid = 0.0;
        let mut out = Vec::new();
        let mut t = SimTime::ZERO;
        let end = SimTime::from_days(days);
        while t < end {
            resid = 0.9 * resid + noise();
            let h = t.hour_of_day();
            let v = 18.0 + 6.0 * ((h - 6.0) / 24.0 * std::f64::consts::TAU).sin() + resid;
            out.push((t, v));
            t += SimDuration::from_mins(step_mins);
        }
        out
    }

    #[test]
    fn combined_beats_seasonal_at_one_step() {
        // With every sample observed, the AR stage soaks up the weather
        // residual the seasonal table cannot represent.
        let hist = weather(14, 10);
        let (train, test) = hist.split_at(hist.len() * 3 / 4);

        let (mut combined, _) = SeasonalArModel::train(train, 24, 2);
        let (mut seasonal, _) = SeasonalModel::train(train, 24);

        let (mut se_c, mut se_s) = (0.0f64, 0.0f64);
        for &(t, v) in test {
            let pc = combined.predict(t).value;
            let ps = seasonal.predict(t).value;
            se_c += (v - pc) * (v - pc);
            se_s += (v - ps) * (v - ps);
            combined.observe(t, v);
            seasonal.observe(t, v);
        }
        assert!(se_c < se_s, "combined {se_c} vs seasonal {se_s}");
    }

    #[test]
    fn combined_beats_plain_ar_over_long_horizons() {
        // With *no* observations during the test window (the situation a
        // proxy is in when a sensor goes quiet under model-driven push),
        // plain AR degenerates to persistence/mean while the seasonal
        // stage keeps tracking the diurnal swing.
        let hist = weather(14, 10);
        let (train, test) = hist.split_at(hist.len() * 3 / 4);

        let (combined, _) = SeasonalArModel::train(train, 24, 2);
        let (ar, _) = ArModel::train(train, 2);

        let (mut se_c, mut se_a) = (0.0f64, 0.0f64);
        for &(t, v) in test {
            let pc = combined.predict(t).value;
            let pa = ar.predict(t).value;
            se_c += (v - pc) * (v - pc);
            se_a += (v - pa) * (v - pa);
            // No observe(): the sensors are silent.
        }
        assert!(se_c < 0.5 * se_a, "combined {se_c} vs ar {se_a}");
    }

    #[test]
    fn params_roundtrip() {
        let hist = weather(7, 15);
        let (m, _) = SeasonalArModel::train(&hist, 24, 2);
        let bytes = m.encode_params();
        let replica = SeasonalArModel::decode_params(&bytes).unwrap();
        assert_eq!(replica.residual_ar().order(), 2);
        let t = SimTime::from_days(8) + SimDuration::from_hours(15);
        // Cold replica: seasonal part matches; AR context differs until
        // the replica observes data.
        let a = m.seasonal().predict(t).value;
        let b = replica.seasonal().predict(t).value;
        assert!((a - b).abs() < 1e-2);
        assert!(SeasonalArModel::decode_params(&[5]).is_none());
        assert!(SeasonalArModel::decode_params(&[255, 255, 0]).is_none());
    }

    #[test]
    fn replica_tracks_after_warmup() {
        let hist = weather(10, 10);
        let (m, _) = SeasonalArModel::train(&hist, 24, 2);
        let mut replica = SeasonalArModel::decode_params(&m.encode_params()).unwrap();
        // Warm the replica with the last few true samples, then compare
        // next-step predictions against held-out truth.
        let (warm, test) = hist.split_at(hist.len() - 20);
        for &(t, v) in warm.iter().rev().take(10).collect::<Vec<_>>().iter().rev() {
            replica.observe(*t, *v);
        }
        let mut err = 0.0;
        for &(t, v) in test {
            err += (replica.predict(t).value - v).abs();
            replica.observe(t, v);
        }
        assert!(err / 20.0 < 1.0, "mean err {}", err / 20.0);
    }

    /// Diurnal signal whose residual *persistence* flips by time of day
    /// — strongly correlated at night (φ=0.9), nearly white by day
    /// (φ=0.1) — with noise amplitudes chosen so the residual VARIANCE
    /// is the same in both regimes. Equal marginal variance is exactly
    /// the "shared Gram matrix" premise of the binned solver (at order
    /// 1 the Gram *is* the lag-0 variance); only the per-bin
    /// cross-covariance differs, which a single global AR coefficient
    /// cannot represent.
    fn regime_weather(days: u64, step_mins: u64) -> Vec<(SimTime, f64)> {
        let mut state = 99u64;
        let mut noise = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f64 / (1u64 << 30) as f64 - 1.0
        };
        let mut resid = 0.0;
        let mut out = Vec::new();
        let mut t = SimTime::ZERO;
        let end = SimTime::from_days(days);
        while t < end {
            let h = t.hour_of_day();
            // amp² / (1 − φ²) equal across regimes ⇒ equal variance.
            let (phi, amp) = if !(6.0..18.0).contains(&h) {
                (0.9, 0.4 * (1.0f64 - 0.81).sqrt())
            } else {
                (0.1, 0.4 * (1.0f64 - 0.01).sqrt())
            };
            resid = phi * resid + amp * noise();
            let v = 18.0 + 6.0 * ((h - 6.0) / 24.0 * std::f64::consts::TAU).sin() + resid;
            out.push((t, v));
            t += SimDuration::from_mins(step_mins);
        }
        out
    }

    #[test]
    fn shared_factor_matches_per_bin_refactorization_exactly() {
        // Both formulations solve the same normal equations; sharing the
        // Cholesky factor must not change a single coefficient.
        let hist = regime_weather(10, 10);
        let (shared, shared_report) = SeasonalArModel::train_binned(&hist, 24, 3);
        let (naive, naive_report) = SeasonalArModel::train_binned_refactorized(&hist, 24, 3);
        let (a, b) = (
            shared.bin_coeffs().expect("binned"),
            naive.bin_coeffs().expect("binned"),
        );
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-12, "{x} vs {y}");
        }
        // The reported training cost documents the reuse win: the naive
        // path rebuilds/refactors the Gram per bin.
        assert!(
            naive_report.train_cycles > shared_report.train_cycles * 3,
            "naive {} vs shared {}",
            naive_report.train_cycles,
            shared_report.train_cycles
        );
    }

    #[test]
    fn binned_ar_tracks_regime_dependent_dynamics_better() {
        let hist = regime_weather(14, 10);
        let (train, test) = hist.split_at(hist.len() * 3 / 4);
        let (mut binned, _) = SeasonalArModel::train_binned(train, 24, 1);
        assert!(binned.is_binned());
        let (mut global, _) = SeasonalArModel::train(train, 24, 1);
        let (mut se_b, mut se_g) = (0.0f64, 0.0f64);
        for &(t, v) in test {
            let pb = binned.predict(t).value;
            let pg = global.predict(t).value;
            se_b += (v - pb) * (v - pb);
            se_g += (v - pg) * (v - pg);
            binned.observe(t, v);
            global.observe(t, v);
        }
        assert!(se_b < se_g, "binned {se_b} vs global {se_g}");
    }

    #[test]
    fn binned_params_roundtrip() {
        let hist = regime_weather(7, 15);
        let (m, _) = SeasonalArModel::train_binned(&hist, 24, 2);
        let bytes = m.encode_params();
        let replica = SeasonalArModel::decode_params(&bytes).unwrap();
        assert!(replica.is_binned());
        assert_eq!(
            replica.bin_coeffs().unwrap().len(),
            m.bin_coeffs().unwrap().len()
        );
        for (x, y) in replica
            .bin_coeffs()
            .unwrap()
            .iter()
            .zip(m.bin_coeffs().unwrap())
        {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
        // Degenerate histories never install a refinement but still
        // round-trip.
        let (tiny, _) = SeasonalArModel::train_binned(&hist[..2], 24, 2);
        assert!(!tiny.is_binned());
        assert!(SeasonalArModel::decode_params(&tiny.encode_params()).is_some());
    }

    #[test]
    fn report_accounts_for_both_stages() {
        let hist = weather(7, 10);
        let (m, report) = SeasonalArModel::train(&hist, 24, 3);
        assert!(report.train_cycles > hist.len() as u64 * 40);
        assert!(report.train_cycles > 1000 * m.check_cycles());
        assert_eq!(report.samples, hist.len());
    }

    #[test]
    fn residual_sigma_below_raw_sigma() {
        let hist = weather(14, 10);
        let (_, combined) = SeasonalArModel::train(&hist, 24, 2);
        let (_, seasonal_only) = SeasonalModel::train(&hist, 24);
        assert!(combined.residual_sigma < seasonal_only.residual_sigma);
    }
}
