//! Time-of-day seasonal model.
//!
//! "A model of temperature variations will capture time-of-day effects …
//! only deviations from the normal temperature for each hour of the day
//! are reported" (paper §3). The model is a table of per-bin mean and
//! standard deviation over a 24-hour period; prediction is one table
//! lookup, the cheapest possible sensor-side check.

use presto_sim::SimTime;

use crate::traits::{ModelKind, Prediction, Predictor, TrainReport};

/// Seasonal (diurnal) bin model.
#[derive(Clone, Debug)]
pub struct SeasonalModel {
    /// Per-bin means over a 24 h period.
    means: Vec<f64>,
    /// Per-bin standard deviations.
    sigmas: Vec<f64>,
    /// EWMA weight applied by [`Predictor::observe`] to adapt bins online.
    ewma_alpha: f64,
}

impl SeasonalModel {
    /// Trains a model with `bins` bins per day from timestamped history.
    ///
    /// Returns the model and its training cost report. With no data in a
    /// bin, the global mean is substituted.
    pub fn train(history: &[(SimTime, f64)], bins: usize) -> (Self, TrainReport) {
        assert!(bins > 0, "at least one bin");
        let mut sums = vec![0.0f64; bins];
        let mut sqs = vec![0.0f64; bins];
        let mut counts = vec![0u64; bins];
        for &(t, v) in history {
            let b = Self::bin_of(t, bins);
            sums[b] += v;
            sqs[b] += v * v;
            counts[b] += 1;
        }
        let total: f64 = sums.iter().sum();
        let n: u64 = counts.iter().sum();
        let global_mean = if n == 0 { 0.0 } else { total / n as f64 };

        let mut means = Vec::with_capacity(bins);
        let mut sigmas = Vec::with_capacity(bins);
        let mut sse = 0.0;
        for b in 0..bins {
            if counts[b] == 0 {
                means.push(global_mean);
                sigmas.push(1.0);
            } else {
                let m = sums[b] / counts[b] as f64;
                let var = (sqs[b] / counts[b] as f64 - m * m).max(0.0);
                means.push(m);
                sigmas.push(var.sqrt().max(1e-6));
                sse += var * counts[b] as f64;
            }
        }
        let residual_sigma = if n == 0 { 0.0 } else { (sse / n as f64).sqrt() };

        // ~12 cycles per sample (bin index, three accumulations) plus
        // ~60 per bin for the final statistics.
        let train_cycles = history.len() as u64 * 12 + bins as u64 * 60;

        (
            SeasonalModel {
                means,
                sigmas,
                ewma_alpha: 0.02,
            },
            TrainReport {
                train_cycles,
                residual_sigma,
                samples: history.len(),
            },
        )
    }

    /// Decodes a model from its wire parameters.
    pub fn decode_params(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 2 || !(bytes.len() - 2).is_multiple_of(8) {
            return None;
        }
        let bins = u16::from_le_bytes([bytes[0], bytes[1]]) as usize;
        if bins == 0 || bytes.len() != 2 + bins * 8 {
            return None;
        }
        let mut means = Vec::with_capacity(bins);
        let mut sigmas = Vec::with_capacity(bins);
        for b in 0..bins {
            let off = 2 + b * 8;
            let m = f32::from_le_bytes(bytes[off..off + 4].try_into().ok()?) as f64;
            let s = f32::from_le_bytes(bytes[off + 4..off + 8].try_into().ok()?) as f64;
            means.push(m);
            sigmas.push(s);
        }
        Some(SeasonalModel {
            means,
            sigmas,
            ewma_alpha: 0.02,
        })
    }

    /// Number of diurnal bins.
    pub fn bins(&self) -> usize {
        self.means.len()
    }

    /// The bin an instant falls into under this model's bin count.
    pub fn bin_index(&self, t: SimTime) -> usize {
        Self::bin_of(t, self.means.len())
    }

    fn bin_of(t: SimTime, bins: usize) -> usize {
        let frac = t.hour_of_day() / 24.0;
        ((frac * bins as f64) as usize).min(bins - 1)
    }
}

impl Predictor for SeasonalModel {
    fn kind(&self) -> ModelKind {
        ModelKind::Seasonal
    }

    fn predict(&self, t: SimTime) -> Prediction {
        let b = Self::bin_of(t, self.means.len());
        Prediction {
            value: self.means[b],
            sigma: self.sigmas[b],
        }
    }

    fn observe(&mut self, t: SimTime, value: f64) {
        let b = Self::bin_of(t, self.means.len());
        let a = self.ewma_alpha;
        self.means[b] = (1.0 - a) * self.means[b] + a * value;
    }

    fn encode_params(&self) -> Vec<u8> {
        let bins = self.means.len();
        let mut out = Vec::with_capacity(2 + bins * 8);
        out.extend_from_slice(&(bins as u16).to_le_bytes());
        for b in 0..bins {
            out.extend_from_slice(&(self.means[b] as f32).to_le_bytes());
            out.extend_from_slice(&(self.sigmas[b] as f32).to_le_bytes());
        }
        out
    }

    fn check_cycles(&self) -> u64 {
        // Bin index (~10), table lookup + compare (~10), EWMA update (~15).
        35
    }

    fn clone_replica(&self) -> Box<dyn Predictor> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::Verdict;
    use presto_sim::SimDuration;

    /// Synthesizes `days` days of diurnal data sampled every `step_mins`.
    fn diurnal_history(days: u64, step_mins: u64) -> Vec<(SimTime, f64)> {
        let mut out = Vec::new();
        let mut t = SimTime::ZERO;
        let end = SimTime::from_days(days);
        while t < end {
            let h = t.hour_of_day();
            let v = 18.0 + 6.0 * ((h - 6.0) / 24.0 * std::f64::consts::TAU).sin();
            out.push((t, v));
            t += SimDuration::from_mins(step_mins);
        }
        out
    }

    #[test]
    fn learns_the_diurnal_cycle() {
        let hist = diurnal_history(7, 10);
        let (m, report) = SeasonalModel::train(&hist, 24);
        assert_eq!(report.samples, hist.len());
        // Noon on a later day should predict close to the true curve.
        let noon = SimTime::from_days(10) + SimDuration::from_hours(12);
        let truth = 18.0 + 6.0 * ((12.0 - 6.0) / 24.0 * std::f64::consts::TAU).sin();
        let p = m.predict(noon);
        assert!((p.value - truth).abs() < 0.5, "{} vs {truth}", p.value);
    }

    #[test]
    fn residual_sigma_reflects_within_bin_variation() {
        let hist = diurnal_history(7, 10);
        let (_, r24) = SeasonalModel::train(&hist, 24);
        let (_, r4) = SeasonalModel::train(&hist, 4);
        // Fewer bins ⇒ more within-bin variance.
        assert!(r4.residual_sigma > r24.residual_sigma);
    }

    #[test]
    fn params_roundtrip() {
        let hist = diurnal_history(3, 15);
        let (m, _) = SeasonalModel::train(&hist, 24);
        let bytes = m.encode_params();
        assert_eq!(bytes.len(), 2 + 24 * 8);
        let replica = SeasonalModel::decode_params(&bytes).unwrap();
        let t = SimTime::from_hours(100);
        assert!((replica.predict(t).value - m.predict(t).value).abs() < 1e-3);
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(SeasonalModel::decode_params(&[]).is_none());
        assert!(SeasonalModel::decode_params(&[0, 0]).is_none());
        assert!(SeasonalModel::decode_params(&[1, 0, 0, 0]).is_none());
    }

    #[test]
    fn check_flags_anomalies_only() {
        let hist = diurnal_history(7, 10);
        let (m, _) = SeasonalModel::train(&hist, 24);
        let mut replica = m.clone_replica();
        let t = SimTime::from_days(8) + SimDuration::from_hours(12);
        let normal = m.predict(t).value + 0.3;
        assert_eq!(replica.check(t, normal, 1.0), Verdict::Conforms);
        match replica.check(t, normal + 10.0, 1.0) {
            Verdict::Deviates { residual } => assert!(residual > 8.0),
            v => panic!("expected deviation, got {v:?}"),
        }
    }

    #[test]
    fn observe_adapts_bin_mean() {
        let hist = diurnal_history(7, 10);
        let (mut m, _) = SeasonalModel::train(&hist, 24);
        let t = SimTime::from_days(9); // midnight bin
        let before = m.predict(t).value;
        for _ in 0..200 {
            m.observe(t, before + 5.0);
        }
        let after = m.predict(t).value;
        assert!(after > before + 4.0, "did not adapt: {before} -> {after}");
    }

    #[test]
    fn empty_history_trains_flat_model() {
        let (m, report) = SeasonalModel::train(&[], 24);
        assert_eq!(report.samples, 0);
        assert_eq!(m.predict(SimTime::from_hours(3)).value, 0.0);
    }

    #[test]
    fn check_is_cheap() {
        let (m, report) = SeasonalModel::train(&diurnal_history(7, 10), 24);
        // The asymmetry the paper demands: training costs orders of
        // magnitude more than a single check.
        assert!(report.train_cycles > 100 * m.check_cycles());
    }
}
