//! The model contract shared by proxy and sensor.

use presto_sim::SimTime;

/// A point prediction with an uncertainty estimate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Prediction {
    /// Predicted value.
    pub value: f64,
    /// One standard deviation of predictive uncertainty.
    pub sigma: f64,
}

impl Prediction {
    /// True if `observed` lies within `tolerance` of the prediction.
    pub fn within(&self, observed: f64, tolerance: f64) -> bool {
        (observed - self.value).abs() <= tolerance
    }
}

/// Outcome of a sensor-side model check.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Verdict {
    /// The sample conforms to the model; nothing needs to be pushed.
    Conforms,
    /// The model failed; the residual (observed − predicted) must be
    /// pushed to the proxy.
    Deviates {
        /// Observed minus predicted value.
        residual: f64,
    },
}

/// Which model class an instance belongs to (used in reports and for
/// parameter dispatch on the wire).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Time-of-day/day-of-week bins.
    Seasonal,
    /// Autoregressive time series.
    Ar,
    /// Seasonal plus AR-of-residuals (the PRESTO default).
    SeasonalAr,
    /// Sliding-window linear trend.
    LinearTrend,
    /// Discretized Markov chain.
    Markov,
}

impl ModelKind {
    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            ModelKind::Seasonal => "seasonal",
            ModelKind::Ar => "ar",
            ModelKind::SeasonalAr => "seasonal+ar",
            ModelKind::LinearTrend => "linear-trend",
            ModelKind::Markov => "markov",
        }
    }
}

/// Cost report from training a model at the proxy.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TrainReport {
    /// CPU cycles consumed by training (charged to the proxy, but
    /// measured to demonstrate the build/check asymmetry).
    pub train_cycles: u64,
    /// Training-set residual standard deviation (model fit quality).
    pub residual_sigma: f64,
    /// Number of history samples used.
    pub samples: usize,
}

/// A trained model replica: the proxy keeps one for extrapolation, and
/// the sensor runs an identical replica (decoded from pushed parameters)
/// for model-driven push.
pub trait Predictor: Send {
    /// The model class.
    fn kind(&self) -> ModelKind;

    /// Predicts the value at `t` given everything observed so far.
    fn predict(&self, t: SimTime) -> Prediction;

    /// Feeds an observed sample; models with temporal state (AR, Markov)
    /// fold it into their prediction context.
    fn observe(&mut self, t: SimTime, value: f64);

    /// Serializes the parameters the proxy ships to the sensor.
    fn encode_params(&self) -> Vec<u8>;

    /// CPU cycles for one sensor-side check (predict + compare + state
    /// update). Must be O(1)-ish: this is the asymmetry requirement.
    fn check_cycles(&self) -> u64;

    /// Clones the model into a boxed replica (the "ship to sensor" step).
    fn clone_replica(&self) -> Box<dyn Predictor>;

    /// Runs the sensor-side check: observe the sample, compare with the
    /// prediction *before* folding the sample in, and report deviation.
    fn check(&mut self, t: SimTime, value: f64, tolerance: f64) -> Verdict {
        let pred = self.predict(t);
        let verdict = if pred.within(value, tolerance) {
            Verdict::Conforms
        } else {
            Verdict::Deviates {
                residual: value - pred.value,
            }
        };
        self.observe(t, value);
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prediction_within() {
        let p = Prediction {
            value: 20.0,
            sigma: 1.0,
        };
        assert!(p.within(20.5, 1.0));
        assert!(p.within(21.0, 1.0));
        assert!(!p.within(21.5, 1.0));
    }

    #[test]
    fn labels_are_distinct() {
        let kinds = [
            ModelKind::Seasonal,
            ModelKind::Ar,
            ModelKind::SeasonalAr,
            ModelKind::LinearTrend,
            ModelKind::Markov,
        ];
        let mut labels: Vec<_> = kinds.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), kinds.len());
    }
}
