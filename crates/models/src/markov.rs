//! Discretized Markov chain model ("Markov model for the temporal axis",
//! paper §3).
//!
//! Values are discretized into `K` states by equal-width bins over the
//! training range; a K×K transition matrix is estimated with Laplace
//! smoothing. Prediction conditions on the current state: the predicted
//! value is the expectation of the next state's bin centre, with the
//! conditional standard deviation as uncertainty. The sensor replica
//! carries `K²` bytes of quantized transition probabilities — still tiny
//! — and a check costs one row scan.

use presto_sim::SimTime;

use crate::traits::{ModelKind, Prediction, Predictor, TrainReport};

/// Discretized Markov chain over value states.
#[derive(Clone, Debug)]
pub struct MarkovModel {
    /// Bin lower edge.
    lo: f64,
    /// Bin width.
    width: f64,
    /// Number of states.
    k: usize,
    /// Row-major transition probabilities (from × to).
    trans: Vec<f64>,
    /// Current state (last observed), if any.
    current: Option<usize>,
    /// Marginal mean value (fallback when no state is known).
    mean: f64,
    sigma: f64,
}

impl MarkovModel {
    /// Trains a `k`-state chain from history.
    pub fn train(history: &[(SimTime, f64)], k: usize) -> (Self, TrainReport) {
        let xs: Vec<f64> = history.iter().map(|&(_, v)| v).collect();
        Self::train_values(&xs, k)
    }

    /// Trains from a plain value sequence.
    pub fn train_values(xs: &[f64], k: usize) -> (Self, TrainReport) {
        assert!(k >= 2, "need at least two states");
        let n = xs.len();
        let (lo, hi) = xs
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), &v| {
                (a.min(v), b.max(v))
            });
        let (lo, width) = if n == 0 || hi <= lo {
            (0.0, 1.0)
        } else {
            (lo, (hi - lo) / k as f64)
        };
        let mean = if n == 0 {
            0.0
        } else {
            xs.iter().sum::<f64>() / n as f64
        };
        let var = if n == 0 {
            0.0
        } else {
            xs.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64
        };

        let state_of = |v: f64| -> usize {
            if width <= 0.0 {
                return 0;
            }
            (((v - lo) / width) as usize).min(k - 1)
        };

        // Laplace-smoothed transition counts.
        let mut counts = vec![1.0f64; k * k];
        for w in xs.windows(2) {
            counts[state_of(w[0]) * k + state_of(w[1])] += 1.0;
        }
        let mut trans = vec![0.0; k * k];
        for i in 0..k {
            let row_sum: f64 = counts[i * k..(i + 1) * k].iter().sum();
            for j in 0..k {
                trans[i * k + j] = counts[i * k + j] / row_sum;
            }
        }

        let current = xs.last().map(|&v| state_of(v));
        // ~8 cycles per transition count, ~5k per row normalization.
        let train_cycles = n as u64 * 8 + (k as u64) * (k as u64) * 5;

        (
            MarkovModel {
                lo,
                width,
                k,
                trans,
                current,
                mean,
                sigma: var.sqrt().max(1e-6),
            },
            TrainReport {
                train_cycles,
                residual_sigma: var.sqrt(),
                samples: n,
            },
        )
    }

    fn state_of(&self, v: f64) -> usize {
        if self.width <= 0.0 {
            return 0;
        }
        (((v - self.lo) / self.width) as usize).min(self.k - 1)
    }

    /// Centre value of a state's bin.
    fn centre(&self, s: usize) -> f64 {
        self.lo + (s as f64 + 0.5) * self.width
    }

    /// Decodes wire parameters.
    pub fn decode_params(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 1 + 8 + 8 {
            return None;
        }
        let k = bytes[0] as usize;
        if k < 2 || bytes.len() != 17 + k * k {
            return None;
        }
        let lo = f32::from_le_bytes(bytes[1..5].try_into().ok()?) as f64;
        let width = f32::from_le_bytes(bytes[5..9].try_into().ok()?) as f64;
        let mean = f32::from_le_bytes(bytes[9..13].try_into().ok()?) as f64;
        let sigma = f32::from_le_bytes(bytes[13..17].try_into().ok()?) as f64;
        let mut trans = Vec::with_capacity(k * k);
        for &b in &bytes[17..] {
            trans.push(b as f64 / 255.0);
        }
        // Renormalize rows after quantization.
        for i in 0..k {
            let s: f64 = trans[i * k..(i + 1) * k].iter().sum();
            if s > 0.0 {
                for j in 0..k {
                    trans[i * k + j] /= s;
                }
            }
        }
        Some(MarkovModel {
            lo,
            width,
            k,
            trans,
            current: None,
            mean,
            sigma,
        })
    }

    /// Number of states.
    pub fn states(&self) -> usize {
        self.k
    }

    /// Transition probability from state `i` to state `j`.
    pub fn transition(&self, i: usize, j: usize) -> f64 {
        self.trans[i * self.k + j]
    }
}

impl Predictor for MarkovModel {
    fn kind(&self) -> ModelKind {
        ModelKind::Markov
    }

    fn predict(&self, _t: SimTime) -> Prediction {
        let Some(s) = self.current else {
            return Prediction {
                value: self.mean,
                sigma: self.sigma,
            };
        };
        let row = &self.trans[s * self.k..(s + 1) * self.k];
        let mut ev = 0.0;
        for (j, p) in row.iter().enumerate() {
            ev += p * self.centre(j);
        }
        let mut var = 0.0;
        for (j, p) in row.iter().enumerate() {
            let d = self.centre(j) - ev;
            var += p * d * d;
        }
        Prediction {
            value: ev,
            sigma: var.sqrt().max(1e-6),
        }
    }

    fn observe(&mut self, _t: SimTime, value: f64) {
        self.current = Some(self.state_of(value));
    }

    fn encode_params(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(17 + self.k * self.k);
        out.push(self.k as u8);
        for v in [self.lo, self.width, self.mean, self.sigma] {
            out.extend_from_slice(&(v as f32).to_le_bytes());
        }
        for &p in &self.trans {
            out.push((p * 255.0).round().clamp(0.0, 255.0) as u8);
        }
        out
    }

    fn check_cycles(&self) -> u64 {
        // State lookup + expectation over one row (~4 cycles per state).
        15 + 4 * self.k as u64
    }

    fn clone_replica(&self) -> Box<dyn Predictor> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::Verdict;

    /// A two-regime square wave: alternates between values near 10 and
    /// near 30 with long dwell times — strongly Markovian.
    fn square_wave(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| if (i / 50) % 2 == 0 { 10.0 } else { 30.0 })
            .collect()
    }

    #[test]
    fn learns_dwell_behaviour() {
        let xs = square_wave(5000);
        let (m, _) = MarkovModel::train_values(&xs, 4);
        // From the lowest state, by far the most likely successor is
        // itself (dwell 50 samples).
        let low = m.state_of(10.0);
        assert!(m.transition(low, low) > 0.9, "{}", m.transition(low, low));
    }

    #[test]
    fn prediction_follows_current_state() {
        let xs = square_wave(5000);
        let (mut m, _) = MarkovModel::train_values(&xs, 4);
        m.observe(SimTime::ZERO, 10.0);
        let p_low = m.predict(SimTime::ZERO);
        m.observe(SimTime::ZERO, 30.0);
        let p_high = m.predict(SimTime::ZERO);
        assert!(p_low.value < p_high.value);
        assert!((p_low.value - 10.0).abs() < 4.0, "{}", p_low.value);
        assert!((p_high.value - 30.0).abs() < 4.0, "{}", p_high.value);
    }

    #[test]
    fn params_roundtrip_preserves_structure() {
        let xs = square_wave(2000);
        let (m, _) = MarkovModel::train_values(&xs, 6);
        let bytes = m.encode_params();
        assert_eq!(bytes.len(), 17 + 36);
        let r = MarkovModel::decode_params(&bytes).unwrap();
        assert_eq!(r.states(), 6);
        for i in 0..6 {
            for j in 0..6 {
                assert!((r.transition(i, j) - m.transition(i, j)).abs() < 0.02);
            }
        }
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(MarkovModel::decode_params(&[]).is_none());
        assert!(MarkovModel::decode_params(&[1; 17]).is_none()); // k < 2
        assert!(MarkovModel::decode_params(&[4; 18]).is_none()); // wrong len
    }

    #[test]
    fn check_flags_regime_breaks() {
        let xs = square_wave(5000);
        let (m, _) = MarkovModel::train_values(&xs, 4);
        let mut replica = m.clone_replica();
        replica.observe(SimTime::ZERO, 10.0);
        assert_eq!(replica.check(SimTime::ZERO, 10.0, 6.0), Verdict::Conforms);
        match replica.check(SimTime::ZERO, 80.0, 6.0) {
            Verdict::Deviates { .. } => {}
            v => panic!("expected deviation, got {v:?}"),
        }
    }

    #[test]
    fn constant_series_degenerates_safely() {
        let (m, _) = MarkovModel::train_values(&[5.0; 100], 4);
        let p = m.predict(SimTime::ZERO);
        assert!(p.value.is_finite() && p.sigma.is_finite());
    }

    #[test]
    #[should_panic(expected = "at least two states")]
    fn rejects_single_state() {
        MarkovModel::train_values(&[1.0, 2.0], 1);
    }

    #[test]
    fn rows_are_stochastic() {
        let xs = square_wave(1000);
        let (m, _) = MarkovModel::train_values(&xs, 5);
        for i in 0..5 {
            let s: f64 = (0..5).map(|j| m.transition(i, j)).sum();
            assert!((s - 1.0).abs() < 1e-9, "row {i} sums to {s}");
        }
    }
}
