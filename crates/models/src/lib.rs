//! Prediction models for PRESTO's model-driven push and extrapolation.
//!
//! The paper (§3) requires models that are **asymmetric**: "they can be
//! hard to build at the proxy, but they must require little resources to
//! verify at the sensor." Every model here therefore has two costed
//! halves:
//!
//! * a **training** path (run at the proxy over cached history; its cycle
//!   cost is reported so experiment E7 can measure the asymmetry), and
//! * a **checking/prediction** path (run per sample at the sensor;
//!   [`Predictor::check_cycles`] reports its per-sample cost and
//!   [`Predictor::encode_params`] its over-the-air parameter footprint).
//!
//! Model classes (matching the paper's suggestions):
//!
//! * [`seasonal::SeasonalModel`] — time-of-day (and day-of-week) bins,
//!   the "normal temperature for each hour of the day" model.
//! * [`ar::ArModel`] — AR(p) time-series fit via Levinson–Durbin, the
//!   "time-series analysis" option.
//! * [`combined::SeasonalArModel`] — seasonal mean + AR over residuals,
//!   PRESTO's default (and the shape the authors later adopted for the
//!   full system).
//! * [`regression::LinearTrendModel`] — "simple regression techniques."
//! * [`markov::MarkovModel`] — "Markov model for the temporal axis."
//! * [`spatial::SpatialGaussian`] — "multivariate models for the spatial
//!   axis" (BBQ-style conditional inference across nearby sensors);
//!   proxy-only.
//!
//! [`linalg`] provides the small dense-matrix kernel (Cholesky) that the
//! spatial model needs; it is written here rather than pulled in as a
//! dependency because the allowed crate set has no linear algebra.

pub mod ar;
pub mod combined;
pub mod linalg;
pub mod markov;
pub mod regression;
pub mod seasonal;
pub mod spatial;
pub mod traits;

pub use ar::ArModel;
pub use combined::SeasonalArModel;
pub use linalg::Matrix;
pub use markov::MarkovModel;
pub use regression::LinearTrendModel;
pub use seasonal::SeasonalModel;
pub use spatial::SpatialGaussian;
pub use traits::{ModelKind, Prediction, Predictor, TrainReport, Verdict};
