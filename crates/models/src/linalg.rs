//! Minimal dense linear algebra: just enough for the spatial Gaussian
//! model (symmetric positive-definite solves via Cholesky).
//!
//! Written in-tree because the allowed dependency set contains no linear
//! algebra crate; the matrices involved are tiny (one row/column per
//! sensor in a proxy's neighbourhood, i.e. tens).

/// A dense row-major matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// The identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// k-panel width for [`Matrix::mul`]: a 64-row panel of `rhs` stays
    /// L2-resident across every output row it feeds.
    const MUL_BLOCK: usize = 64;

    /// Matrix product `self × rhs`, blocked over `MUL_BLOCK`-row panels
    /// of `rhs`: instead of streaming the whole right operand once per
    /// output row (the naive order re-reads it `rows` times from
    /// memory), each panel is reused across *all* output rows while
    /// cache-hot, and the inner loop runs over bounds-check-free row
    /// slices. For each output element the k-accumulation order is
    /// identical to [`Matrix::mul_naive`] (panels ascend, k ascends
    /// within a panel), so the result is bit-for-bit equal to the naive
    /// triple loop.
    ///
    /// Panics on inner-dimension mismatch.
    pub fn mul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        let n = rhs.cols;
        for k0 in (0..self.cols).step_by(Self::MUL_BLOCK) {
            let k_end = (k0 + Self::MUL_BLOCK).min(self.cols);
            for i in 0..self.rows {
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for k in k0..k_end {
                    let a = self.data[i * self.cols + k];
                    if a == 0.0 {
                        continue;
                    }
                    let rhs_row = &rhs.data[k * n..(k + 1) * n];
                    for (o, r) in out_row.iter_mut().zip(rhs_row) {
                        *o += a * r;
                    }
                }
            }
        }
        out
    }

    /// The naive O(n³) triple loop `mul` used to be — kept as the
    /// reference implementation for the differential tests and the
    /// criterion datapoint quantifying the blocking win.
    pub fn mul_naive(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix–vector product.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "dimension mismatch");
        (0..self.rows)
            .map(|i| (0..self.cols).map(|j| self[(i, j)] * v[j]).sum())
            .collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite
    /// matrix. Returns `None` if the matrix is not (numerically) SPD.
    pub fn cholesky(&self) -> Option<Matrix> {
        if self.rows != self.cols {
            return None;
        }
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 1e-12 {
                        return None;
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Some(l)
    }

    /// Solves `A·x = b` for SPD `A` using its Cholesky factor.
    pub fn solve_spd(&self, b: &[f64]) -> Option<Vec<f64>> {
        let l = self.cholesky()?;
        Some(l.solve_cholesky(b))
    }

    /// Given `self = L` (lower triangular Cholesky factor), solves
    /// `L·Lᵀ·x = b` by forward then backward substitution.
    pub fn solve_cholesky(&self, b: &[f64]) -> Vec<f64> {
        let n = self.rows;
        assert_eq!(b.len(), n);
        // Forward: L·y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self[(i, k)] * y[k];
            }
            y[i] = sum / self[(i, i)];
        }
        // Backward: Lᵀ·x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in i + 1..n {
                sum -= self[(k, i)] * x[k];
            }
            x[i] = sum / self[(i, i)];
        }
        x
    }

    /// Extracts the submatrix with the given row and column index sets.
    pub fn submatrix(&self, row_idx: &[usize], col_idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(row_idx.len(), col_idx.len());
        for (oi, &i) in row_idx.iter().enumerate() {
            for (oj, &j) in col_idx.iter().enumerate() {
                out[(oi, oj)] = self[(i, j)];
            }
        }
        out
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mul_matches_hand_example() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.mul(&b);
        assert_eq!(c, Matrix::from_vec(2, 2, vec![19.0, 22.0, 43.0, 50.0]));
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(Matrix::identity(2).mul(&a), a);
        assert_eq!(a.mul(&Matrix::identity(3)), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn cholesky_of_known_spd() {
        let a = Matrix::from_vec(2, 2, vec![4.0, 2.0, 2.0, 3.0]);
        let l = a.cholesky().unwrap();
        // L = [[2, 0], [1, √2]].
        assert!((l[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 1.0).abs() < 1e-12);
        assert!((l[(1, 1)] - 2f64.sqrt()).abs() < 1e-12);
        assert_eq!(l[(0, 1)], 0.0);
    }

    #[test]
    fn cholesky_rejects_non_spd() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]); // indefinite
        assert!(a.cholesky().is_none());
        let r = Matrix::from_vec(2, 3, vec![0.0; 6]); // not square
        assert!(r.cholesky().is_none());
    }

    #[test]
    fn solve_spd_recovers_solution() {
        let a = Matrix::from_vec(3, 3, vec![6.0, 2.0, 1.0, 2.0, 5.0, 2.0, 1.0, 2.0, 4.0]);
        let x_true = vec![1.0, -2.0, 3.0];
        let b = a.mul_vec(&x_true);
        let x = a.solve_spd(&b).unwrap();
        for (u, v) in x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn submatrix_extracts() {
        let a = Matrix::from_vec(3, 3, (1..=9).map(f64::from).collect());
        let s = a.submatrix(&[0, 2], &[1]);
        assert_eq!(s, Matrix::from_vec(2, 1, vec![2.0, 8.0]));
    }

    /// Deterministic pseudo-random matrix for differential tests.
    fn filled(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 4.0 - 2.0
        };
        Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| next()).collect())
    }

    #[test]
    fn blocked_mul_is_bit_identical_to_naive_across_shapes() {
        // Shapes straddling the 64-wide block edge in every dimension,
        // including non-square and degenerate ones.
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 2),
            (63, 64, 65),
            (64, 64, 64),
            (65, 1, 65),
            (1, 130, 64),
            (100, 70, 129),
        ] {
            let a = filled(m, k, (m * 1000 + k) as u64);
            let b = filled(k, n, (k * 1000 + n) as u64);
            let blocked = a.mul(&b);
            let naive = a.mul_naive(&b);
            // Identical accumulation order ⇒ bit-for-bit equality, not
            // just within-epsilon.
            assert_eq!(blocked, naive, "shape ({m},{k},{n})");
        }
    }

    #[test]
    fn blocked_mul_skips_zeros_like_naive() {
        let mut a = filled(70, 70, 7);
        for i in 0..70 {
            for j in 0..70 {
                if (i + j) % 3 == 0 {
                    a[(i, j)] = 0.0;
                }
            }
        }
        let b = filled(70, 70, 8);
        assert_eq!(a.mul(&b), a.mul_naive(&b));
    }

    proptest! {
        #[test]
        fn blocked_mul_matches_naive_random(
            vals_a in proptest::collection::vec(-2.0f64..2.0, 30),
            vals_b in proptest::collection::vec(-2.0f64..2.0, 36),
        ) {
            let a = Matrix::from_vec(5, 6, vals_a);
            let b = Matrix::from_vec(6, 6, vals_b);
            prop_assert_eq!(a.mul(&b), a.mul_naive(&b));
        }
    }

    proptest! {
        #[test]
        fn solve_random_spd(vals in proptest::collection::vec(-2.0f64..2.0, 16), rhs in proptest::collection::vec(-5.0f64..5.0, 4)) {
            // Build SPD as BᵀB + εI.
            let b_mat = Matrix::from_vec(4, 4, vals);
            let mut a = b_mat.transpose().mul(&b_mat);
            for i in 0..4 {
                a[(i, i)] += 0.5;
            }
            let x = a.solve_spd(&rhs).unwrap();
            let back = a.mul_vec(&x);
            for (u, v) in back.iter().zip(&rhs) {
                prop_assert!((u - v).abs() < 1e-8);
            }
        }
    }
}
