//! Spatial multivariate Gaussian model (BBQ-style, paper §3).
//!
//! "Cached data from other nearby sensors … can be used for such
//! extrapolation": the proxy models the joint distribution of its
//! sensors' simultaneous readings as a multivariate Gaussian and answers
//! a query about a silent sensor by conditioning on whatever
//! contemporaneous readings it does have. This model never leaves the
//! proxy — it is a pure extrapolation device, so it has no sensor-side
//! replica and does not implement [`crate::traits::Predictor`].

use crate::linalg::Matrix;
use crate::traits::Prediction;

/// Joint Gaussian over the readings of `n` co-located sensors.
#[derive(Clone, Debug)]
pub struct SpatialGaussian {
    mean: Vec<f64>,
    cov: Matrix,
    /// Training cycle cost (for the asymmetry experiment).
    pub train_cycles: u64,
}

impl SpatialGaussian {
    /// Trains from rows of simultaneous readings (`rows[t][s]` = sensor
    /// `s` at epoch `t`). A small ridge keeps the covariance SPD.
    ///
    /// Returns `None` if fewer than two rows or zero columns.
    pub fn train(rows: &[Vec<f64>]) -> Option<Self> {
        let t = rows.len();
        if t < 2 {
            return None;
        }
        let n = rows[0].len();
        if n == 0 || rows.iter().any(|r| r.len() != n) {
            return None;
        }
        let mut mean = vec![0.0; n];
        for row in rows {
            for (m, v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= t as f64;
        }
        let mut cov = Matrix::zeros(n, n);
        for row in rows {
            for i in 0..n {
                let di = row[i] - mean[i];
                for j in 0..n {
                    cov[(i, j)] += di * (row[j] - mean[j]);
                }
            }
        }
        for i in 0..n {
            for j in 0..n {
                cov[(i, j)] /= t as f64;
            }
            // Ridge for numerical SPD-ness.
            cov[(i, i)] += 1e-6;
        }
        // ~4 cycles per (row × n²) accumulate.
        let train_cycles = (t as u64) * (n as u64) * (n as u64) * 4;
        Some(SpatialGaussian {
            mean,
            cov,
            train_cycles,
        })
    }

    /// Number of sensors modelled.
    pub fn sensors(&self) -> usize {
        self.mean.len()
    }

    /// Marginal prediction for one sensor (no conditioning).
    pub fn marginal(&self, target: usize) -> Prediction {
        Prediction {
            value: self.mean[target],
            sigma: self.cov[(target, target)].sqrt(),
        }
    }

    /// Conditional prediction of `target` given simultaneous observations
    /// of other sensors: `x_A | x_B ~ N(µ_A + Σ_AB Σ_BB⁻¹ (x_B − µ_B),
    /// Σ_AA − Σ_AB Σ_BB⁻¹ Σ_BA)`.
    ///
    /// Observations of `target` itself are ignored. Falls back to the
    /// marginal when no usable observations remain or the solve fails.
    pub fn condition(&self, observed: &[(usize, f64)], target: usize) -> Prediction {
        let obs: Vec<(usize, f64)> = observed
            .iter()
            .copied()
            .filter(|&(i, _)| i != target && i < self.sensors())
            .collect();
        if obs.is_empty() {
            return self.marginal(target);
        }
        let b_idx: Vec<usize> = obs.iter().map(|&(i, _)| i).collect();
        let sigma_bb = self.cov.submatrix(&b_idx, &b_idx);
        let Some(l) = sigma_bb.cholesky() else {
            return self.marginal(target);
        };
        let resid: Vec<f64> = obs.iter().map(|&(i, v)| v - self.mean[i]).collect();
        // w = Σ_BB⁻¹ (x_B − µ_B).
        let w = l.solve_cholesky(&resid);
        let sigma_ab: Vec<f64> = b_idx.iter().map(|&j| self.cov[(target, j)]).collect();
        let value = self.mean[target] + sigma_ab.iter().zip(&w).map(|(a, b)| a * b).sum::<f64>();
        // Conditional variance: Σ_AA − Σ_AB Σ_BB⁻¹ Σ_BA.
        let u = l.solve_cholesky(&sigma_ab);
        let var =
            self.cov[(target, target)] - sigma_ab.iter().zip(&u).map(|(a, b)| a * b).sum::<f64>();
        Prediction {
            value,
            sigma: var.max(0.0).sqrt(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rows where sensors share a common field plus private noise:
    /// x_s = field + offset_s + noise_s.
    fn correlated_rows(t: usize, n: usize, noise_amp: f64) -> Vec<Vec<f64>> {
        let mut state = 31337u64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f64 / (1u64 << 30) as f64 - 1.0
        };
        (0..t)
            .map(|k| {
                let field = 20.0 + 5.0 * ((k as f64) * 0.05).sin();
                (0..n)
                    .map(|s| field + s as f64 * 0.5 + rnd() * noise_amp)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn conditioning_sharpens_prediction() {
        let rows = correlated_rows(2000, 5, 0.3);
        let g = SpatialGaussian::train(&rows).unwrap();
        let marginal = g.marginal(0);
        // Observe the other four sensors at a moment when the field is
        // high; conditional sigma must shrink dramatically.
        let obs: Vec<(usize, f64)> = (1..5).map(|s| (s, 25.0 + s as f64 * 0.5)).collect();
        let cond = g.condition(&obs, 0);
        assert!(
            cond.sigma < 0.5 * marginal.sigma,
            "{} vs {}",
            cond.sigma,
            marginal.sigma
        );
        // And the value should track the observed field level, not the mean.
        assert!((cond.value - 25.0).abs() < 1.0, "{}", cond.value);
    }

    #[test]
    fn marginal_matches_column_statistics() {
        let rows = correlated_rows(5000, 3, 0.2);
        let g = SpatialGaussian::train(&rows).unwrap();
        let col0_mean = rows.iter().map(|r| r[0]).sum::<f64>() / rows.len() as f64;
        assert!((g.marginal(0).value - col0_mean).abs() < 1e-9);
    }

    #[test]
    fn ignores_observation_of_target_itself() {
        let rows = correlated_rows(1000, 3, 0.2);
        let g = SpatialGaussian::train(&rows).unwrap();
        let with_self = g.condition(&[(0, 99.0), (1, 21.0)], 0);
        let without = g.condition(&[(1, 21.0)], 0);
        assert!((with_self.value - without.value).abs() < 1e-12);
    }

    #[test]
    fn no_observations_falls_back_to_marginal() {
        let rows = correlated_rows(1000, 3, 0.2);
        let g = SpatialGaussian::train(&rows).unwrap();
        let c = g.condition(&[], 1);
        let m = g.marginal(1);
        assert_eq!(c.value, m.value);
    }

    #[test]
    fn train_rejects_degenerate_input() {
        assert!(SpatialGaussian::train(&[]).is_none());
        assert!(SpatialGaussian::train(&[vec![1.0]]).is_none());
        assert!(SpatialGaussian::train(&[vec![1.0, 2.0], vec![1.0]]).is_none());
        assert!(SpatialGaussian::train(&[vec![], vec![]]).is_none());
    }

    #[test]
    fn out_of_range_observations_ignored() {
        let rows = correlated_rows(500, 2, 0.2);
        let g = SpatialGaussian::train(&rows).unwrap();
        let c = g.condition(&[(17, 5.0)], 0);
        assert_eq!(c.value, g.marginal(0).value);
    }

    #[test]
    fn uncorrelated_sensors_gain_nothing() {
        // Independent columns: conditioning barely moves the prediction.
        let mut state = 1u64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f64 / (1u64 << 30) as f64 - 1.0
        };
        let rows: Vec<Vec<f64>> = (0..3000)
            .map(|_| (0..2).map(|_| rnd() * 5.0).collect())
            .collect();
        let g = SpatialGaussian::train(&rows).unwrap();
        let m = g.marginal(0);
        let c = g.condition(&[(1, 4.0)], 0);
        assert!((c.sigma / m.sigma) > 0.95, "{} vs {}", c.sigma, m.sigma);
    }
}
