//! Known-good lint fixture. Never compiled — linted by
//! `crates/analysis/tests/lints.rs` under the synthetic path
//! `crates/proxy/src/fixture_good.rs` (all rules in scope) and must come
//! back clean: ordered containers, simulated time only, honest failure,
//! checked conversions, fully wired Stats, and exactly one justified allow.

use std::collections::BTreeMap;

pub struct FixtureStats {
    pub hits: u64,
}

impl FixtureStats {
    pub fn merge(&mut self, other: &FixtureStats) {
        self.hits += other.hits;
    }
}

impl Observe for FixtureStats {
    fn observe(&self, out: &mut Vec<(String, u64)>) {
        out.push(("fixture.hits".into(), self.hits));
    }
}

pub fn lookup(map: &BTreeMap<u16, f64>, key: usize) -> Option<f64> {
    let key = u16::try_from(key).ok()?;
    map.get(&key).copied()
}

pub fn first_byte(bytes: &[u8]) -> u8 {
    // presto-lint: allow(panic, fixture: callers guarantee non-empty input by construction)
    *bytes.first().unwrap()
}

#[cfg(test)]
mod tests {
    // Test code is exempt: panics and wall-clock are fine here.
    use std::time::Instant;

    #[test]
    fn lookup_roundtrip() {
        let t = Instant::now();
        assert!(t.elapsed().as_secs() < 1);
    }
}
