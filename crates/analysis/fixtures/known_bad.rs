//! Known-bad lint fixture. Never compiled — linted by
//! `crates/analysis/tests/lints.rs` under the synthetic path
//! `crates/proxy/src/fixture_bad.rs` so every rule is in scope, and each
//! lint class below must fire at least once.

use std::collections::HashMap; // D1: nondeterministic iteration order
use std::time::Instant; // D2: host wall-clock

pub struct OrphanStats {
    pub hits: u64,
}

// A0: annotation names an unknown lint.
// presto-lint: allow(bogus, this rule id does not exist)
pub fn lookup(map: &HashMap<u16, f64>, key: usize) -> f64 {
    // D1 fires on the HashMap above; A0 fires on the reason-less allow here.
    // presto-lint: allow(det)
    let started = Instant::now();
    let key = key as u16; // N1: silent truncation on the query path
    let _ = started;
    *map.get(&key).unwrap() // H1: panics instead of failing honestly
}

// A0: stale annotation — nothing on the next line violates `clock`.
// presto-lint: allow(clock, nothing here actually reads the clock)
pub fn quiet() {}
