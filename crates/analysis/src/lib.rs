//! `presto-lint` — workspace invariant checker.
//!
//! The simulation's headline claims (seed-determinism, honest failure, full
//! telemetry coverage) rest on invariants the type system cannot see. This
//! crate enforces them with a token-pattern pass over the workspace's own
//! source, built on a hand-rolled lexer (`lexer.rs`) — no external deps.
//!
//! Lint classes:
//!
//! - **D1 `det`** — no `HashMap`/`HashSet` in sim-visible code: `std`'s
//!   `RandomState` seeds each map per-instance, so iteration order differs
//!   between runs *and* between instances, silently breaking
//!   seed-determinism wherever iteration order reaches behavior.
//! - **D2 `clock`** — no wall-clock or entropy (`Instant`, `SystemTime`,
//!   `thread_rng`, `std::env`) outside the bench/telemetry-timer allowlists;
//!   all simulation time must come from `SimTime`.
//! - **H1 `panic`** — no `.unwrap()` / `.expect()` / `panic!`-family macros
//!   in library code of the lossy-path crates (`core`, `proxy`, `fleet`,
//!   `reliability`, `sensor`); a query must fail honestly, never crash.
//! - **N1 `narrow`** — flag narrowing `as` casts on the query/radio path
//!   crates; truncation there corrupts ids and counters silently.
//! - **T1 `stats`** — every `pub struct *Stats` must implement `Observe`
//!   (registry coverage) and `merge` (fleet aggregation).
//! - **T2 `watchdog`** — every `pub const WD_*` watchdog rule name must be
//!   exercised by a test somewhere in the workspace (an ident reference
//!   inside a `#[cfg(test)]` / `#[test]` span); an SLO constant nothing
//!   tests is a watchdog that may never have fired.
//!
//! A site can be justified with an annotation comment — the tool name, a
//! colon, then `allow(<rule>, <reason>)` — on the same line or on a
//! whole-line comment directly above (see ANALYSIS.md for examples). The
//! reason is mandatory; unknown rules, missing reasons, and annotations that
//! match no violation are themselves violations (A0 `meta`), so the
//! allowlist cannot rot.
//!
//! Code inside `#[cfg(test)]` / `#[test]` items is exempt from D1/D2/H1/N1
//! (tests may panic and may use wall-clock), but `*Stats` declarations in
//! test code are ignored by T1 rather than required to be wired up.

pub mod lexer;

use lexer::{lex, Comment, Tok, Token};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Lint classes. `Meta` covers annotation hygiene and is not itself
/// allowable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    Det,
    Clock,
    Panic,
    Narrow,
    Stats,
    Watchdog,
    Meta,
}

impl Rule {
    /// The id used in `allow(<id>, ...)` annotations.
    pub fn id(self) -> &'static str {
        match self {
            Rule::Det => "det",
            Rule::Clock => "clock",
            Rule::Panic => "panic",
            Rule::Narrow => "narrow",
            Rule::Stats => "stats",
            Rule::Watchdog => "watchdog",
            Rule::Meta => "meta",
        }
    }

    /// Short code used in report lines.
    pub fn code(self) -> &'static str {
        match self {
            Rule::Det => "D1",
            Rule::Clock => "D2",
            Rule::Panic => "H1",
            Rule::Narrow => "N1",
            Rule::Stats => "T1",
            Rule::Watchdog => "T2",
            Rule::Meta => "A0",
        }
    }

    fn from_id(s: &str) -> Option<Rule> {
        match s {
            "det" => Some(Rule::Det),
            "clock" => Some(Rule::Clock),
            "panic" => Some(Rule::Panic),
            "narrow" => Some(Rule::Narrow),
            "stats" => Some(Rule::Stats),
            "watchdog" => Some(Rule::Watchdog),
            _ => None,
        }
    }
}

#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: Rule,
    pub path: String,
    pub line: usize,
    pub msg: String,
}

impl Violation {
    pub fn render(&self) -> String {
        format!(
            "{}:{}: {}({}): {}",
            self.path,
            self.line,
            self.rule.code(),
            self.rule.id(),
            self.msg
        )
    }
}

/// One workspace source file, with a repo-relative `/`-separated path. The
/// path drives rule scoping, so fixture tests pass synthetic paths like
/// `crates/proxy/src/fixture.rs` to place a snippet in a given scope.
#[derive(Debug, Clone)]
pub struct SourceFile {
    pub path: String,
    pub text: String,
}

#[derive(Debug, Default)]
pub struct Report {
    pub violations: Vec<Violation>,
    pub files_checked: usize,
    pub allows_honored: usize,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Rule scoping by path
// ---------------------------------------------------------------------------

/// Crates whose library code sits on the lossy query path: a panic there is
/// a dishonest failure. H1 applies here.
const PANIC_FREE_CRATES: &[&str] = &["core", "proxy", "fleet", "reliability", "sensor"];

/// Query/radio path crates where a silently-truncating cast corrupts sensor
/// ids, sequence numbers, or counters. N1 applies here.
const NARROW_CRATES: &[&str] = &["core", "proxy", "fleet", "reliability", "sensor", "net"];

fn in_crates(path: &str, crates: &[&str]) -> bool {
    crates.iter().any(|c| {
        path.strip_prefix("crates/")
            .and_then(|r| r.strip_prefix(c))
            .is_some_and(|r| r.starts_with("/src/"))
    })
}

/// D2 allowlist: host-side code that legitimately reads the host clock or
/// process environment and is never part of simulated behavior.
fn clock_allowlisted(path: &str) -> bool {
    // Scenario drivers and reports: wall-clock for benchmarking, argv for CLI.
    path.starts_with("crates/bench/src/")
        // The epoch profiler *is* the telemetry timer.
        || path == "crates/telemetry/src/profiler.rs"
        // The lint tool itself is a host tool (argv, file system).
        || path.starts_with("crates/analysis/src/")
}

// ---------------------------------------------------------------------------
// Test-span detection
// ---------------------------------------------------------------------------

/// Line ranges (inclusive) covered by `#[cfg(test)]` / `#[test]` items.
fn test_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i + 1 < tokens.len() {
        if !(is_punct(&tokens[i], '#') && is_punct(&tokens[i + 1], '[')) {
            i += 1;
            continue;
        }
        let attr_line = tokens[i].line;
        // Collect the attribute's tokens up to the matching `]`.
        let mut j = i + 2;
        let mut depth = 1usize;
        let mut attr_idents: Vec<&str> = Vec::new();
        while j < tokens.len() && depth > 0 {
            match &tokens[j].tok {
                Tok::Punct('[') => depth += 1,
                Tok::Punct(']') => depth -= 1,
                Tok::Ident(s) => attr_idents.push(s),
                _ => {}
            }
            j += 1;
        }
        let is_test_attr = match attr_idents.first() {
            Some(&"test") => true,
            Some(&"cfg") => attr_idents.contains(&"test"),
            _ => false,
        };
        if !is_test_attr {
            i = j;
            continue;
        }
        // Find the annotated item's body: skip further attributes, then the
        // span runs to the matching `}` (or to a terminating `;` for items
        // without a body, e.g. `#[cfg(test)] mod tests;`).
        let mut k = j;
        let mut end_line = attr_line;
        while k < tokens.len() {
            match &tokens[k].tok {
                Tok::Punct('{') => {
                    let mut bd = 1usize;
                    let mut m = k + 1;
                    while m < tokens.len() && bd > 0 {
                        match &tokens[m].tok {
                            Tok::Punct('{') => bd += 1,
                            Tok::Punct('}') => bd -= 1,
                            _ => {}
                        }
                        m += 1;
                    }
                    end_line = tokens[m.saturating_sub(1).min(tokens.len() - 1)].line;
                    k = m;
                    break;
                }
                Tok::Punct(';') => {
                    end_line = tokens[k].line;
                    k += 1;
                    break;
                }
                _ => k += 1,
            }
        }
        spans.push((attr_line, end_line));
        i = k.max(j);
    }
    spans
}

fn in_test(spans: &[(usize, usize)], line: usize) -> bool {
    spans.iter().any(|&(a, b)| line >= a && line <= b)
}

// ---------------------------------------------------------------------------
// Allow annotations
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct Annotation {
    line: usize,
    whole_line: bool,
    rule: Rule,
    used: bool,
}

/// Parse an allow annotation (tool name, colon, `allow(rule, reason)`) out
/// of a comment. Prose that merely mentions the tool name without the full
/// `: allow` marker is ignored; once the marker is present, malformed bodies
/// are `Err(msg)` violations.
fn parse_annotation(c: &Comment) -> Option<Result<Annotation, String>> {
    let idx = c.text.find("presto-lint")?;
    let rest = c.text[idx + "presto-lint".len()..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let inner = match rest.strip_prefix('(').and_then(|r| r.rfind(')').map(|e| &r[..e])) {
        Some(i) => i,
        None => return Some(Err("unclosed `allow(...)` annotation".into())),
    };
    let (rule_id, reason) = match inner.split_once(',') {
        Some((r, why)) => (r.trim(), why.trim()),
        None => (inner.trim(), ""),
    };
    let rule = match Rule::from_id(rule_id) {
        Some(r) if r != Rule::Meta => r,
        _ => {
            return Some(Err(format!(
                "unknown lint `{rule_id}` (expected det, clock, panic, narrow, stats, or watchdog)"
            )))
        }
    };
    if reason.is_empty() {
        return Some(Err(format!(
            "allow({rule_id}) needs a justification: allow({rule_id}, <why this is sound>)"
        )));
    }
    Some(Ok(Annotation {
        line: c.line,
        whole_line: c.whole_line,
        rule,
        used: false,
    }))
}

// ---------------------------------------------------------------------------
// Per-file context
// ---------------------------------------------------------------------------

struct FileCtx {
    path: String,
    tokens: Vec<Token>,
    spans: Vec<(usize, usize)>,
    annotations: Vec<Annotation>,
    /// Violations before allow-annotation resolution.
    raw: Vec<(Rule, usize, String)>,
}

fn ident(t: &Token) -> Option<&str> {
    match &t.tok {
        Tok::Ident(s) => Some(s),
        _ => None,
    }
}

fn is_punct(t: &Token, c: char) -> bool {
    t.tok == Tok::Punct(c)
}

fn is_ident(t: &Token, s: &str) -> bool {
    matches!(&t.tok, Tok::Ident(w) if w == s)
}

// ---------------------------------------------------------------------------
// Per-file lints
// ---------------------------------------------------------------------------

fn scan_det(ctx: &mut FileCtx) {
    let mut found = Vec::new();
    for t in &ctx.tokens {
        if in_test(&ctx.spans, t.line) {
            continue;
        }
        if let Some(name @ ("HashMap" | "HashSet")) = ident(t) {
            let fix = if name == "HashMap" { "BTreeMap" } else { "BTreeSet" };
            found.push((
                Rule::Det,
                t.line,
                format!("{name} iteration order is nondeterministic (std RandomState); use {fix} or justify"),
            ));
        }
    }
    ctx.raw.extend(found);
}

fn scan_clock(ctx: &mut FileCtx) {
    if clock_allowlisted(&ctx.path) {
        return;
    }
    let mut found = Vec::new();
    let toks = &ctx.tokens;
    for i in 0..toks.len() {
        if in_test(&ctx.spans, toks[i].line) {
            continue;
        }
        if let Some(name @ ("Instant" | "SystemTime" | "thread_rng" | "from_entropy")) =
            ident(&toks[i])
        {
            found.push((
                Rule::Clock,
                toks[i].line,
                format!("`{name}` leaks host wall-clock/entropy into simulation code; use SimTime / seeded RNG"),
            ));
        }
        if i + 3 < toks.len()
            && is_ident(&toks[i], "std")
            && is_punct(&toks[i + 1], ':')
            && is_punct(&toks[i + 2], ':')
            && is_ident(&toks[i + 3], "env")
        {
            found.push((
                Rule::Clock,
                toks[i].line,
                "`std::env` reads host process state; thread config through explicit parameters".into(),
            ));
        }
    }
    ctx.raw.extend(found);
}

fn scan_panic(ctx: &mut FileCtx) {
    if !in_crates(&ctx.path, PANIC_FREE_CRATES) {
        return;
    }
    let mut found = Vec::new();
    let toks = &ctx.tokens;
    for i in 0..toks.len() {
        if in_test(&ctx.spans, toks[i].line) {
            continue;
        }
        if i + 2 < toks.len()
            && is_punct(&toks[i], '.')
            && is_punct(&toks[i + 2], '(')
        {
            if let Some(name @ ("unwrap" | "expect")) = ident(&toks[i + 1]) {
                found.push((
                    Rule::Panic,
                    toks[i + 1].line,
                    format!("`.{name}()` can panic on the lossy path; propagate an honest failure instead"),
                ));
            }
        }
        if i + 1 < toks.len() && is_punct(&toks[i + 1], '!') {
            if let Some(name @ ("panic" | "unreachable" | "todo" | "unimplemented")) =
                ident(&toks[i])
            {
                found.push((
                    Rule::Panic,
                    toks[i].line,
                    format!("`{name}!` crashes the proxy instead of failing the query honestly"),
                ));
            }
        }
    }
    ctx.raw.extend(found);
}

const NARROW_TYPES: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

fn scan_narrow(ctx: &mut FileCtx) {
    if !in_crates(&ctx.path, NARROW_CRATES) {
        return;
    }
    let mut found = Vec::new();
    let toks = &ctx.tokens;
    for i in 0..toks.len().saturating_sub(1) {
        if in_test(&ctx.spans, toks[i].line) {
            continue;
        }
        if is_ident(&toks[i], "as") {
            if let Some(ty) = ident(&toks[i + 1]) {
                if NARROW_TYPES.contains(&ty) {
                    found.push((
                        Rule::Narrow,
                        toks[i].line,
                        format!("narrowing `as {ty}` cast can truncate silently; use try_from or a checked helper"),
                    ));
                }
            }
        }
    }
    ctx.raw.extend(found);
}

// ---------------------------------------------------------------------------
// T1: cross-file Stats coverage
// ---------------------------------------------------------------------------

#[derive(Default)]
struct StatsIndex {
    /// `pub struct FooStats` declarations outside test code:
    /// name -> (file index, line).
    decls: BTreeMap<String, (usize, usize)>,
    /// Names with `Observe` evidence (`observe_counters!(Foo` or
    /// `impl ... Observe for ... Foo`).
    observed: BTreeSet<String>,
    /// Idents appearing in a `fn merge(...)` signature window anywhere.
    merged: BTreeSet<String>,
}

fn index_stats(ctx: &FileCtx, file_idx: usize, idx: &mut StatsIndex) {
    let toks = &ctx.tokens;
    for i in 0..toks.len() {
        if i + 2 < toks.len() && is_ident(&toks[i], "pub") && is_ident(&toks[i + 1], "struct") {
            if let Some(name) = ident(&toks[i + 2]) {
                if name.len() > "Stats".len()
                    && name.ends_with("Stats")
                    && !in_test(&ctx.spans, toks[i].line)
                {
                    idx.decls
                        .entry(name.to_string())
                        .or_insert((file_idx, toks[i].line));
                }
            }
        }
        // observe_counters!(Foo { ... })
        if i + 3 < toks.len()
            && is_ident(&toks[i], "observe_counters")
            && is_punct(&toks[i + 1], '!')
            && is_punct(&toks[i + 2], '(')
        {
            if let Some(name) = ident(&toks[i + 3]) {
                idx.observed.insert(name.to_string());
            }
        }
        // impl [path::]Observe for [path::]Foo { — record every ident after
        // `for` in the impl header; only names declared as `*Stats` are ever
        // looked up, so over-approximation is harmless.
        if is_ident(&toks[i], "impl") {
            let mut saw_observe = false;
            let mut saw_for = false;
            for t in toks.iter().skip(i + 1).take(40) {
                match ident(t) {
                    Some("Observe") => saw_observe = true,
                    Some("for") => saw_for = true,
                    Some(name) if saw_observe && saw_for => {
                        idx.observed.insert(name.to_string());
                    }
                    _ => {}
                }
                if is_punct(t, '{') || is_punct(t, ';') {
                    break;
                }
            }
        }
        // fn merge(&mut self, other: &Foo) — the parameter must name the
        // concrete type (not `Self`) for the evidence to register.
        if i + 1 < toks.len() && is_ident(&toks[i], "fn") && is_ident(&toks[i + 1], "merge") {
            for t in toks.iter().skip(i + 2).take(25) {
                if let Some(name) = ident(t) {
                    idx.merged.insert(name.to_string());
                }
                if is_punct(t, '{') {
                    break;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// T2: cross-file watchdog-rule fixture coverage
// ---------------------------------------------------------------------------

#[derive(Default)]
struct WatchdogIndex {
    /// `pub const WD_*` declarations outside test code:
    /// name -> (file index, line).
    decls: BTreeMap<String, (usize, usize)>,
    /// WD_* idents referenced from inside a test span anywhere.
    tested: BTreeSet<String>,
}

fn index_watchdogs(ctx: &FileCtx, file_idx: usize, idx: &mut WatchdogIndex) {
    let toks = &ctx.tokens;
    for i in 0..toks.len() {
        let Some(name) = ident(&toks[i]) else { continue };
        if !name.starts_with("WD_") {
            continue;
        }
        if in_test(&ctx.spans, toks[i].line) {
            idx.tested.insert(name.to_string());
        } else if i >= 2
            && is_ident(&toks[i - 2], "pub")
            && is_ident(&toks[i - 1], "const")
        {
            idx.decls
                .entry(name.to_string())
                .or_insert((file_idx, toks[i].line));
        }
    }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Lint a set of sources. Paths select which rules apply to which file (see
/// the scope constants above); pass workspace-relative paths.
pub fn lint(files: &[SourceFile]) -> Report {
    let mut ctxs: Vec<FileCtx> = Vec::with_capacity(files.len());
    for f in files {
        let out = lex(&f.text);
        let spans = test_spans(&out.tokens);
        let mut annotations = Vec::new();
        let mut raw = Vec::new();
        for c in &out.comments {
            match parse_annotation(c) {
                Some(Ok(a)) => annotations.push(a),
                Some(Err(msg)) => raw.push((Rule::Meta, c.line, msg)),
                None => {}
            }
        }
        ctxs.push(FileCtx {
            path: f.path.clone(),
            tokens: out.tokens,
            spans,
            annotations,
            raw,
        });
    }

    let mut stats = StatsIndex::default();
    let mut watchdogs = WatchdogIndex::default();
    for (i, ctx) in ctxs.iter().enumerate() {
        index_stats(ctx, i, &mut stats);
        index_watchdogs(ctx, i, &mut watchdogs);
    }
    for ctx in &mut ctxs {
        scan_det(ctx);
        scan_clock(ctx);
        scan_panic(ctx);
        scan_narrow(ctx);
    }
    for (name, &(file_idx, line)) in &stats.decls {
        if !stats.observed.contains(name) {
            ctxs[file_idx].raw.push((
                Rule::Stats,
                line,
                format!("pub struct {name} must implement Observe (observe_counters! or impl Observe)"),
            ));
        }
        if !stats.merged.contains(name) {
            ctxs[file_idx].raw.push((
                Rule::Stats,
                line,
                format!("pub struct {name} must implement `fn merge(&mut self, other: &{name})`"),
            ));
        }
    }
    for (name, &(file_idx, line)) in &watchdogs.decls {
        if !watchdogs.tested.contains(name) {
            ctxs[file_idx].raw.push((
                Rule::Watchdog,
                line,
                format!(
                    "watchdog rule `{name}` has no fixture test; reference it from a \
                     #[test] that drives the rule to a violation"
                ),
            ));
        }
    }

    // Resolve allow annotations: same line, or a whole-line comment directly
    // above the offending line.
    let mut report = Report {
        files_checked: files.len(),
        ..Report::default()
    };
    for ctx in &mut ctxs {
        for (rule, line, msg) in std::mem::take(&mut ctx.raw) {
            let allowed = ctx.annotations.iter_mut().find(|a| {
                a.rule == rule && (a.line == line || (a.whole_line && a.line + 1 == line))
            });
            match allowed {
                Some(a) if rule != Rule::Meta => {
                    a.used = true;
                    report.allows_honored += 1;
                }
                _ => report.violations.push(Violation {
                    rule,
                    path: ctx.path.clone(),
                    line,
                    msg,
                }),
            }
        }
        for a in &ctx.annotations {
            if !a.used {
                report.violations.push(Violation {
                    rule: Rule::Meta,
                    path: ctx.path.clone(),
                    line: a.line,
                    msg: format!(
                        "allow({}) matches no violation on its line; remove the stale annotation",
                        a.rule.id()
                    ),
                });
            }
        }
    }
    report
        .violations
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    report
}

/// Collect every workspace-owned `.rs` source: `src/` of the umbrella crate
/// plus `crates/*/src/`. Vendored shims (`vendor/`), integration tests,
/// benches, and lint fixtures are out of scope.
pub fn collect_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    let mut roots = vec![root.join("src")];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let p = entry?.path().join("src");
            if p.is_dir() {
                roots.push(p);
            }
        }
    }
    for r in roots {
        walk(&r, root, &mut files)?;
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(files)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let p = entry?.path();
        if p.is_dir() {
            walk(&p, root, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(SourceFile {
                path: rel,
                text: fs::read_to_string(&p)?,
            });
        }
    }
    Ok(())
}

/// Walk the workspace rooted at `root` and lint everything.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    Ok(lint(&collect_workspace(root)?))
}

/// Locate the workspace root: walk up from `start` until a directory holding
/// both `Cargo.toml` and `crates/` appears.
pub fn find_workspace_root(start: &Path) -> PathBuf {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return dir;
        }
        if !dir.pop() {
            return start.to_path_buf();
        }
    }
}
