//! A small hand-rolled Rust lexer: just enough fidelity for token-pattern
//! lints. It distinguishes identifiers, punctuation, literals (string / raw
//! string / byte string / char / number), lifetimes, and comments, and tracks
//! the 1-based source line of every token. It does not attempt full
//! tokenization of Rust (no float-suffix pedantry, no shebang handling) —
//! the lints only need identifier and punctuation sequences to be exact and
//! literal/comment text to be *excluded* from them.

/// One lexical token. Comments are reported separately (see [`Comment`]) so
/// pattern matching over `Tok` streams never has to skip them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`HashMap`, `as`, `pub`, ...).
    Ident(String),
    /// Single punctuation character (`.`, `!`, `(`, ...).
    Punct(char),
    /// Any literal: string, raw string, byte string, char, or number.
    /// The text is discarded — lints must never match inside literals.
    Lit,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
}

#[derive(Debug, Clone)]
pub struct Token {
    pub tok: Tok,
    pub line: usize,
}

/// A comment with its starting line. `whole_line` is true when nothing but
/// whitespace precedes it on its line — such comments can annotate the line
/// *below* them.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: usize,
    pub whole_line: bool,
}

pub struct LexOutput {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

pub fn lex(src: &str) -> LexOutput {
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut line_has_code = false;
    let mut tokens = Vec::new();
    let mut comments = Vec::new();

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                line_has_code = false;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < chars.len() && chars[i + 1] == '/' => {
                let start = i;
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                comments.push(Comment {
                    text: chars[start..i].iter().collect(),
                    line,
                    whole_line: !line_has_code,
                });
            }
            '/' if i + 1 < chars.len() && chars[i + 1] == '*' => {
                let start = i;
                let start_line = line;
                let whole_line = !line_has_code;
                let mut depth = 1usize;
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if chars[i] == '/' && i + 1 < chars.len() && chars[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < chars.len() && chars[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                comments.push(Comment {
                    text: chars[start..i.min(chars.len())].iter().collect(),
                    line: start_line,
                    whole_line,
                });
                line_has_code = line == start_line && line_has_code;
            }
            '"' => {
                line_has_code = true;
                i = skip_string(&chars, i, &mut line);
                tokens.push(Token { tok: Tok::Lit, line });
            }
            '\'' => {
                line_has_code = true;
                // Char literal vs lifetime. `'\...'` and `'x'` are chars;
                // `'ident` not closed by a quote is a lifetime.
                let is_char = if i + 1 < chars.len() && chars[i + 1] == '\\' {
                    true
                } else {
                    i + 2 < chars.len() && chars[i + 2] == '\''
                };
                if is_char {
                    let lit_line = line;
                    i += 1; // past opening quote
                    while i < chars.len() && chars[i] != '\'' {
                        if chars[i] == '\\' {
                            i += 1;
                        }
                        i += 1;
                    }
                    i += 1; // past closing quote
                    tokens.push(Token { tok: Tok::Lit, line: lit_line });
                } else {
                    i += 1;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                    tokens.push(Token { tok: Tok::Lifetime, line });
                }
            }
            c if c.is_ascii_digit() => {
                line_has_code = true;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                // A fractional part: `.` followed by a digit (so `0..10`
                // leaves the range dots alone).
                if i + 1 < chars.len() && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                }
                tokens.push(Token { tok: Tok::Lit, line });
            }
            c if c.is_alphabetic() || c == '_' => {
                line_has_code = true;
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                // Raw / byte string prefixes: r"", r#""#, b"", br"", c"".
                let is_str_prefix = matches!(word.as_str(), "r" | "b" | "br" | "rb" | "c" | "cr")
                    && i < chars.len()
                    && (chars[i] == '"' || (chars[i] == '#' && word.contains('r')));
                if is_str_prefix {
                    let lit_line = line;
                    if word.contains('r') {
                        i = skip_raw_string(&chars, i, &mut line);
                    } else {
                        i = skip_string(&chars, i, &mut line);
                    }
                    tokens.push(Token { tok: Tok::Lit, line: lit_line });
                } else {
                    tokens.push(Token { tok: Tok::Ident(word), line });
                }
            }
            other => {
                line_has_code = true;
                tokens.push(Token { tok: Tok::Punct(other), line });
                i += 1;
            }
        }
    }

    LexOutput { tokens, comments }
}

/// `i` points at the opening `"`. Returns the index just past the closing
/// quote, updating `line` across embedded newlines.
fn skip_string(chars: &[char], mut i: usize, line: &mut usize) -> usize {
    i += 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// `i` points at the first `#` or the `"` after a raw-string prefix.
fn skip_raw_string(chars: &[char], mut i: usize, line: &mut usize) -> usize {
    let mut hashes = 0usize;
    while i < chars.len() && chars[i] == '#' {
        hashes += 1;
        i += 1;
    }
    if i < chars.len() && chars[i] == '"' {
        i += 1;
    }
    while i < chars.len() {
        if chars[i] == '\n' {
            *line += 1;
            i += 1;
        } else if chars[i] == '"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while j < chars.len() && chars[j] == '#' && seen < hashes {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn literals_hide_their_contents() {
        // Identifier-looking text inside strings/comments must not surface.
        let src = r##"let x = "HashMap"; // HashMap in comment
let y = r#"HashSet"#; /* HashMap */ let z = 'H';"##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "ids: {ids:?}");
        assert!(!ids.contains(&"HashSet".to_string()));
        assert_eq!(ids, vec!["let", "x", "let", "y", "let", "z"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; }").tokens;
        let lifetimes = toks.iter().filter(|t| t.tok == Tok::Lifetime).count();
        let lits = toks.iter().filter(|t| t.tok == Tok::Lit).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(lits, 1);
    }

    #[test]
    fn lines_and_whole_line_comments() {
        let src = "let a = 1;\n// whole line\nlet b = 2; // trailing\n";
        let out = lex(src);
        assert_eq!(out.comments.len(), 2);
        assert!(out.comments[0].whole_line);
        assert_eq!(out.comments[0].line, 2);
        assert!(!out.comments[1].whole_line);
        assert_eq!(out.comments[1].line, 3);
        let b = out
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("b".into()))
            .unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn nested_block_comments_and_numbers() {
        let src = "/* outer /* inner */ still comment */ let n = 1_000.5e3; let r = 0..10;";
        let out = lex(src);
        assert_eq!(out.comments.len(), 1);
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "n", "let", "r"]);
    }
}
