//! `presto-lint` CLI: lint the workspace and report violations.
//!
//! Usage: `cargo run -p presto-lint -- [--deny] [--root <path>]`
//!
//! Without flags the pass reports and exits 0; `--deny` exits 1 when any
//! violation (including annotation-hygiene problems) remains — that is the
//! CI mode.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--deny" => deny = true,
            "--root" => root = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!("presto-lint [--deny] [--root <workspace root>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("presto-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(|| {
        let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        presto_lint::find_workspace_root(&cwd)
    });

    let report = match presto_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("presto-lint: failed to read workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    for v in &report.violations {
        println!("{}", v.render());
    }
    println!(
        "presto-lint: {} files checked, {} violations, {} allow annotations honored",
        report.files_checked,
        report.violations.len(),
        report.allows_honored
    );
    if deny && !report.is_clean() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
