//! presto-lint engine tests: one test per lint class against inline
//! snippets, fixture files that must fire (known-bad) or stay clean
//! (known-good), a double-run determinism check on the engine itself, and
//! the tier-1 workspace gate: the real workspace lints clean.

use presto_lint::{find_workspace_root, lint, lint_workspace, Report, SourceFile};
use std::path::Path;

/// Lint one snippet under a synthetic path (the path picks rule scope).
fn lint_one(path: &str, text: &str) -> Report {
    lint(&[SourceFile {
        path: path.into(),
        text: text.into(),
    }])
}

fn codes(report: &Report) -> Vec<&'static str> {
    report.violations.iter().map(|v| v.rule.code()).collect()
}

// --- D1 det -----------------------------------------------------------

#[test]
fn det_flags_hash_containers() {
    let r = lint_one(
        "crates/fleet/src/fixture.rs",
        "use std::collections::{HashMap, HashSet};\n",
    );
    assert_eq!(codes(&r), ["D1", "D1"]);
}

#[test]
fn det_honors_justified_allow() {
    let r = lint_one(
        "crates/fleet/src/fixture.rs",
        "// presto-lint: allow(det, keys are never iterated, only probed)\n\
         use std::collections::HashMap;\n",
    );
    assert!(r.is_clean(), "unexpected: {:?}", r.violations);
    assert_eq!(r.allows_honored, 1);
}

// --- D2 clock ---------------------------------------------------------

#[test]
fn clock_flags_wall_clock_and_env() {
    let r = lint_one(
        "crates/sim/src/fixture.rs",
        "fn t() { let _ = std::time::Instant::now(); let _ = std::env::var(\"X\"); }\n",
    );
    assert_eq!(codes(&r), ["D2", "D2"]);
}

#[test]
fn clock_allowlists_bench_and_profiler() {
    let src = "fn t() { let _ = std::time::Instant::now(); }\n";
    assert!(lint_one("crates/bench/src/fixture.rs", src).is_clean());
    assert!(lint_one("crates/telemetry/src/profiler.rs", src).is_clean());
    assert!(!lint_one("crates/telemetry/src/fixture.rs", src).is_clean());
}

// --- H1 panic ---------------------------------------------------------

#[test]
fn panic_flags_unwrap_expect_and_macros_in_scope() {
    let src = "fn f(x: Option<u64>) -> u64 {\n\
               let a = x.unwrap();\n\
               let b = x.expect(\"msg\");\n\
               if a > b { panic!(\"boom\"); }\n\
               a\n}\n";
    let r = lint_one("crates/proxy/src/fixture.rs", src);
    assert_eq!(codes(&r), ["H1", "H1", "H1"]);
    // Same code outside the lossy-path crates is not H1's business.
    assert!(lint_one("crates/telemetry/src/fixture.rs", src).is_clean());
}

#[test]
fn panic_exempts_test_code() {
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u8>.unwrap(); }\n}\n";
    assert!(lint_one("crates/proxy/src/fixture.rs", src).is_clean());
}

// --- N1 narrow --------------------------------------------------------

#[test]
fn narrow_flags_truncating_casts_in_scope() {
    let src = "fn f(x: usize) -> u16 { x as u16 }\n";
    let r = lint_one("crates/sensor/src/fixture.rs", src);
    assert_eq!(codes(&r), ["N1"]);
    // Widening casts are fine; out-of-scope crates are fine.
    assert!(lint_one("crates/sensor/src/fixture.rs", "fn g(x: u16) -> u64 { x as u64 }\n").is_clean());
    assert!(lint_one("crates/telemetry/src/fixture.rs", src).is_clean());
}

// --- T1 stats ---------------------------------------------------------

#[test]
fn stats_requires_observe_and_merge() {
    let r = lint_one(
        "crates/telemetry/src/fixture.rs",
        "pub struct OrphanStats { pub hits: u64 }\n",
    );
    assert_eq!(codes(&r), ["T1", "T1"]);
    assert!(r.violations[0].msg.contains("Observe"));
    assert!(r.violations[1].msg.contains("merge"));
}

#[test]
fn stats_satisfied_by_observe_and_merge_evidence() {
    // Evidence may live in a different file than the declaration.
    let decl = SourceFile {
        path: "crates/telemetry/src/fixture_a.rs".into(),
        text: "pub struct WiredStats { pub hits: u64 }\n\
               impl WiredStats { pub fn merge(&mut self, other: &WiredStats) { self.hits += other.hits; } }\n"
            .into(),
    };
    let wiring = SourceFile {
        path: "crates/telemetry/src/fixture_b.rs".into(),
        text: "fn reg(s: &WiredStats) { observe_counters!(WiredStats, s); }\n".into(),
    };
    let r = lint(&[decl, wiring]);
    assert!(r.is_clean(), "unexpected: {:?}", r.violations);
}

// --- T2 watchdog ------------------------------------------------------

#[test]
fn watchdog_requires_a_fixture_test() {
    let r = lint_one(
        "crates/telemetry/src/fixture.rs",
        "pub const WD_ORPHAN_RULE: &str = \"orphan_rule\";\n",
    );
    assert_eq!(codes(&r), ["T2"]);
    assert!(r.violations[0].msg.contains("WD_ORPHAN_RULE"));
}

#[test]
fn watchdog_satisfied_by_test_reference_anywhere() {
    // The fixture test may live in a different file than the constant.
    let decl = SourceFile {
        path: "crates/telemetry/src/fixture_a.rs".into(),
        text: "pub const WD_COVERED_RULE: &str = \"covered_rule\";\n".into(),
    };
    let fixture = SourceFile {
        path: "crates/fleet/src/fixture_b.rs".into(),
        text: "#[cfg(test)]\nmod tests {\n    #[test]\n    fn fires() { let _ = WD_COVERED_RULE; }\n}\n"
            .into(),
    };
    let r = lint(&[decl, fixture]);
    assert!(r.is_clean(), "unexpected: {:?}", r.violations);
    // A reference outside any test span is not evidence.
    let nontest_use = SourceFile {
        path: "crates/fleet/src/fixture_c.rs".into(),
        text: "fn wire() { let _ = WD_COVERED_RULE; }\n".into(),
    };
    let decl2 = SourceFile {
        path: "crates/telemetry/src/fixture_a.rs".into(),
        text: "pub const WD_COVERED_RULE: &str = \"covered_rule\";\n".into(),
    };
    let r = lint(&[decl2, nontest_use]);
    assert_eq!(codes(&r), ["T2"]);
}

// --- A0 meta ----------------------------------------------------------

#[test]
fn meta_flags_stale_unknown_and_reasonless_allows() {
    let r = lint_one(
        "crates/fleet/src/fixture.rs",
        "// presto-lint: allow(det, nothing on the next line needs this)\n\
         fn quiet() {}\n\
         // presto-lint: allow(bogus, no such rule)\n\
         // presto-lint: allow(clock)\n",
    );
    assert_eq!(codes(&r), ["A0", "A0", "A0"]);
}

// --- fixtures ---------------------------------------------------------

#[test]
fn known_bad_fixture_fires_every_lint_class() {
    let r = lint_one(
        "crates/proxy/src/fixture_bad.rs",
        include_str!("../fixtures/known_bad.rs"),
    );
    let fired = codes(&r);
    for code in ["D1", "D2", "H1", "N1", "T1", "A0"] {
        assert!(fired.contains(&code), "{code} did not fire; got {fired:?}");
    }
    assert_eq!(r.allows_honored, 0);
}

#[test]
fn known_good_fixture_is_clean() {
    let r = lint_one(
        "crates/proxy/src/fixture_good.rs",
        include_str!("../fixtures/known_good.rs"),
    );
    assert!(r.is_clean(), "unexpected: {:?}", r.violations);
    assert_eq!(r.allows_honored, 1);
}

// --- engine determinism -----------------------------------------------

#[test]
fn double_run_report_is_byte_identical() {
    let files = [
        SourceFile {
            path: "crates/proxy/src/fixture_bad.rs".into(),
            text: include_str!("../fixtures/known_bad.rs").into(),
        },
        SourceFile {
            path: "crates/proxy/src/fixture_good.rs".into(),
            text: include_str!("../fixtures/known_good.rs").into(),
        },
    ];
    let render = |r: &Report| {
        r.violations
            .iter()
            .map(|v| v.render())
            .collect::<Vec<_>>()
            .join("\n")
    };
    let (a, b) = (lint(&files), lint(&files));
    assert!(!a.violations.is_empty());
    assert_eq!(render(&a), render(&b));
    assert_eq!(a.allows_honored, b.allows_honored);
}

// --- the real workspace (tier-1 gate) ---------------------------------

#[test]
fn workspace_lints_clean() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")));
    let report = lint_workspace(&root).expect("workspace sources readable");
    assert!(
        report.files_checked > 50,
        "suspiciously few files: {}",
        report.files_checked
    );
    let rendered = report
        .violations
        .iter()
        .map(|v| v.render())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(report.is_clean(), "workspace lint violations:\n{rendered}");
}
