//! Property tests for presto-scope: the ring sampler's 2:1 downsampling
//! must preserve min/max/last over any stream, the watchdogs must stay
//! silent on any clean run, and a violation inside an injected fault
//! window must surface as an *attributed* incident for every fault
//! kind the plan can express.

use presto_sim::{FaultPlan, SimDuration, SimTime};
use presto_telemetry::scope::WD_STALE_CONFIDENT;
use presto_telemetry::{
    PrestoScope, RingSeries, ScopeConfig, SeriesSpec, Snapshot, WatchdogRule,
};
use proptest::prelude::*;

fn minute(i: usize) -> SimTime {
    SimTime::ZERO + SimDuration::from_mins(i as u64)
}

proptest! {
    /// Downsampling is lossy on shape but exact on extrema: for any
    /// stream and any ring capacity, the folded bins still report the
    /// stream's true min, max, last value, and total sample count.
    #[test]
    fn downsampling_preserves_min_max_last(
        vals in collection::vec(-1.0e6f64..1.0e6, 1usize..400),
        cap in 4usize..48,
    ) {
        let mut ring = RingSeries::new(cap);
        for (i, &v) in vals.iter().enumerate() {
            ring.push(minute(i), v);
        }
        let bins = ring.bins();
        // `new` rounds odd capacities up to even so pair-folding is exact.
        let eff_cap = cap + (cap & 1);
        prop_assert!(bins.len() <= eff_cap, "ring exceeded its capacity");
        let true_min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let true_max = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let got_min = bins.iter().map(|b| b.min).fold(f64::INFINITY, f64::min);
        let got_max = bins.iter().map(|b| b.max).fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(got_min, true_min);
        prop_assert_eq!(got_max, true_max);
        prop_assert_eq!(bins.last().unwrap().last, *vals.last().unwrap());
        let samples: u64 = bins.iter().map(|b| b.samples).sum();
        prop_assert_eq!(samples, vals.len() as u64);
    }

    /// Clean runs raise zero incidents: with no faults injected and
    /// every reading inside its bound, no seed or trajectory may trip
    /// a watchdog.
    #[test]
    fn clean_runs_raise_zero_incidents(
        load in collection::vec(0.0f64..99.0, 1usize..200),
        stale in 0u64..1_000_000,
    ) {
        let mut scope = PrestoScope::new(ScopeConfig {
            enabled: true,
            series: vec![SeriesSpec::level("probe.load")],
            rules: vec![
                WatchdogRule::below("load_watermark", "probe.load", 100.0),
                WatchdogRule::still(WD_STALE_CONFIDENT, "probe.stale"),
            ],
            ..ScopeConfig::default()
        });
        let snap = Snapshot::new();
        let faults = FaultPlan::none();
        // The stale counter may start anywhere; it must merely not grow.
        scope.feed("probe.stale", stale as f64);
        for (i, &v) in load.iter().enumerate() {
            scope.feed("probe.load", v);
            scope.sample(minute(i), &snap, &faults);
        }
        prop_assert!(
            scope.incidents().is_empty(),
            "clean run tripped: {:?}",
            scope.incidents()
        );
        prop_assert_eq!(scope.unattributed_incidents(), 0);
    }

    /// A rule violated inside an injected fault window yields at least
    /// one incident, and every incident is blamed on that fault —
    /// whichever fault kind (mesh partition, proxy crash, radio burst)
    /// the plan expresses.
    #[test]
    fn fault_window_violations_are_attributed(
        start in 10usize..60,
        width in 1usize..30,
        kind in 0u8..3,
    ) {
        let from = minute(start);
        let to = minute(start + width);
        let faults = match kind {
            0 => FaultPlan::none().with_mesh_partition(vec![1], from, to),
            1 => FaultPlan::none().with_proxy_crash(1, from, to),
            _ => FaultPlan::none().with_shared_burst(from, to),
        };
        let mut scope = PrestoScope::new(ScopeConfig {
            enabled: true,
            rules: vec![WatchdogRule::still(WD_STALE_CONFIDENT, "probe.stale")],
            attribution_pad: SimDuration::from_mins(2),
            ..ScopeConfig::default()
        });
        let snap = Snapshot::new();
        let mut stale = 0u64;
        for i in 0..(start + width + 20) {
            let t = minute(i);
            // The probe regresses only while the fault is active.
            if i > start && i <= start + width {
                stale += 1;
            }
            scope.feed("probe.stale", stale as f64);
            scope.sample(t, &snap, &faults);
        }
        prop_assert!(
            !scope.incidents().is_empty(),
            "violation inside the fault window raised no incident"
        );
        prop_assert_eq!(
            scope.unattributed_incidents(),
            0,
            "incident escaped blame: {:?}",
            scope.incidents()
        );
        prop_assert!(scope.incidents().iter().all(|i| !i.faults.is_empty()));
    }
}
