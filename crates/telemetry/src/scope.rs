//! `presto-scope`: epoch time-series telemetry and online SLO
//! watchdogs with fault attribution.
//!
//! The registry ([`crate::metrics`]) answers "what are the totals";
//! this module answers "how did we get here, and when did it go
//! wrong". Two cooperating pieces:
//!
//! * [`TimeSeriesSampler`] — each epoch, a configurable set of
//!   dotted-path metrics is read out of the flattened [`Snapshot`]
//!   tree (plus externally [`PrestoScope::feed`]-supplied gauges the
//!   tree cannot see, like a scenario's stale-confidence probe) into
//!   bounded per-metric ring buffers. On overflow the ring folds
//!   adjacent bins 2:1 — deterministically, no sampling, no clocks —
//!   so `min`, `max`, and `last` over the *entire* stream are
//!   preserved exactly while memory stays bounded.
//! * [`WatchdogEngine`] — declarative SLO rules evaluated online over
//!   the same per-tick readings: a counter that must stay still
//!   (stale-confident, fenced-while-serving), a value that must stay
//!   under a watermark (answer-age p99, pressure, shed episodes), and
//!   a leak probe (a gauge stuck nonzero with no progress). A
//!   violation opens an [`Incident`]; consecutive violating ticks
//!   extend it; the first clean tick closes it. Every incident carries
//!   the set of [`FaultPlan`] faults active in its (padded) window, so
//!   an alarm during an injected partition/crash/burst is *attributed*
//!   to it and an alarm outside every fault window is an unexplained
//!   regression the bench bins fail on.
//!
//! Determinism: sampling reads only the snapshot tree and `SimTime`;
//! rule evaluation is pure arithmetic over those readings. The scope
//! section a deployment exports via `telemetry_snapshot` is therefore
//! byte-identical across same-seed runs (the dynamic determinism
//! audit covers it).

use std::collections::BTreeMap;

use presto_sim::{ActiveFault, FaultPlan, SimDuration, SimTime};

use crate::metrics::{Observe, Section, Snapshot};

// ---------------------------------------------------------------------------
// Watchdog rule names
// ---------------------------------------------------------------------------
//
// Every rule constant below must keep a matching fixture test (the
// `presto-lint` T2 pass enforces it): a test that constructs the rule
// and drives the engine through a violating and a clean trajectory.

/// Confident answers contradicted by truth must never appear: the
/// watched counter may not increase, ever.
pub const WD_STALE_CONFIDENT: &str = "stale_confident";
/// Serve-time answer-age p99 must stay under the workload's staleness
/// bound.
pub const WD_ANSWER_AGE_P99: &str = "answer_age_p99";
/// A leak probe (open tickets, pending queries, in-flight RPCs) must
/// keep making progress: stuck nonzero with no movement is a leak.
pub const WD_LEAK_PROBE: &str = "leak_probe";
/// Smoothed admission pressure must stay under the deployment
/// watermark.
pub const WD_PRESSURE_WATERMARK: &str = "pressure_watermark";
/// Shed episodes per epoch must stay under the anti-flap watermark.
pub const WD_SHED_EPISODE_WATERMARK: &str = "shed_episode_watermark";
/// A fenced (minority-side) proxy must never be the one serving user
/// traffic: any fenced admission or fenced uplink raises this.
pub const WD_FENCED_WHILE_SERVING: &str = "fenced_while_serving";

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// How a sampled path is turned into a series value each tick.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeriesKind {
    /// Record the reading as-is (gauges, rates, percentiles).
    Level,
    /// Record the increase since the previous tick (cumulative
    /// counters → per-epoch rates). The first tick records the raw
    /// reading.
    Delta,
}

/// One metric the sampler follows.
#[derive(Clone, Debug)]
pub struct SeriesSpec {
    /// Dotted snapshot path (`pipeline.rpcs_issued`) or a
    /// [`PrestoScope::feed`] name.
    pub path: String,
    /// Level or per-tick delta.
    pub kind: SeriesKind,
}

impl SeriesSpec {
    /// A level (gauge) series.
    pub fn level(path: &str) -> Self {
        SeriesSpec {
            path: path.to_string(),
            kind: SeriesKind::Level,
        }
    }

    /// A per-tick delta series over a cumulative counter.
    pub fn delta(path: &str) -> Self {
        SeriesSpec {
            path: path.to_string(),
            kind: SeriesKind::Delta,
        }
    }
}

/// One declarative SLO check.
#[derive(Clone, Debug)]
pub enum RuleCheck {
    /// The reading must never increase (zero-tolerance counters).
    Still,
    /// The reading must stay ≤ `bound`.
    Below {
        /// Inclusive watermark.
        bound: f64,
    },
    /// The reading's per-tick increase must stay ≤ `bound` (rate
    /// watermark over a cumulative counter). The first tick never
    /// violates (no previous reading).
    RateBelow {
        /// Inclusive per-tick watermark.
        bound: f64,
    },
    /// The reading may exceed `floor` transiently, but sitting at the
    /// *same* value above `floor` for `within` consecutive ticks with
    /// no progress is a leak.
    Stuck {
        /// Values at or below this are healthy.
        floor: f64,
        /// Consecutive no-progress ticks above `floor` that trip it.
        within: u32,
    },
}

/// A named SLO rule over one sampled path.
#[derive(Clone, Debug)]
pub struct WatchdogRule {
    /// Rule family (one of the `WD_*` constants).
    pub name: &'static str,
    /// The sampled path the rule watches.
    pub path: String,
    /// The check.
    pub check: RuleCheck,
}

impl WatchdogRule {
    /// A zero-tolerance counter rule.
    pub fn still(name: &'static str, path: &str) -> Self {
        WatchdogRule {
            name,
            path: path.to_string(),
            check: RuleCheck::Still,
        }
    }

    /// A watermark rule.
    pub fn below(name: &'static str, path: &str, bound: f64) -> Self {
        WatchdogRule {
            name,
            path: path.to_string(),
            check: RuleCheck::Below { bound },
        }
    }

    /// A per-tick rate watermark over a cumulative counter.
    pub fn rate_below(name: &'static str, path: &str, bound: f64) -> Self {
        WatchdogRule {
            name,
            path: path.to_string(),
            check: RuleCheck::RateBelow { bound },
        }
    }

    /// A leak-probe rule.
    pub fn stuck(name: &'static str, path: &str, floor: f64, within: u32) -> Self {
        WatchdogRule {
            name,
            path: path.to_string(),
            check: RuleCheck::Stuck { floor, within },
        }
    }
}

/// `presto-scope` configuration: which series to follow, how much to
/// retain, and which rules to watch.
#[derive(Clone, Debug)]
pub struct ScopeConfig {
    /// Master switch; disabled, every call is a no-op.
    pub enabled: bool,
    /// Ring-buffer bins per series (even, ≥ 2). A full ring folds
    /// 2:1, so a run of any length fits.
    pub ring_capacity: usize,
    /// Retained structured incidents; beyond it incidents are still
    /// *counted* per rule but their records drop.
    pub incident_capacity: usize,
    /// Attribution slack around a fault window: a fault is blamed for
    /// an incident when their padded windows overlap (fencing and
    /// re-sync effects outlive the cut itself).
    pub attribution_pad: SimDuration,
    /// The followed series.
    pub series: Vec<SeriesSpec>,
    /// The watched rules.
    pub rules: Vec<WatchdogRule>,
}

impl Default for ScopeConfig {
    fn default() -> Self {
        ScopeConfig {
            enabled: false,
            ring_capacity: 256,
            incident_capacity: 128,
            attribution_pad: SimDuration::from_mins(20),
            series: Vec::new(),
            rules: Vec::new(),
        }
    }
}

// ---------------------------------------------------------------------------
// Ring series with 2:1 downsampling
// ---------------------------------------------------------------------------

/// One stored bin: `samples` raw readings folded together.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeriesBin {
    /// Time of the first reading in the bin.
    pub t: SimTime,
    /// Minimum reading folded in.
    pub min: f64,
    /// Maximum reading folded in.
    pub max: f64,
    /// Last (most recent) reading folded in.
    pub last: f64,
    /// Raw readings folded in.
    pub samples: u64,
}

impl SeriesBin {
    fn one(t: SimTime, v: f64) -> Self {
        SeriesBin {
            t,
            min: v,
            max: v,
            last: v,
            samples: 1,
        }
    }

    fn fold(&mut self, v: f64) {
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.last = v;
        self.samples += 1;
    }

    fn merge(a: SeriesBin, b: SeriesBin) -> SeriesBin {
        SeriesBin {
            t: a.t,
            min: a.min.min(b.min),
            max: a.max.max(b.max),
            last: b.last,
            samples: a.samples + b.samples,
        }
    }
}

/// A bounded per-metric ring: raw readings accumulate into a current
/// bin of `stride` samples; full bins append; a full ring folds
/// adjacent bin pairs 2:1 and doubles the stride. Nothing is ever
/// discarded — only resolution halves — so min/max/last over the whole
/// stream are exact at any moment.
#[derive(Clone, Debug)]
pub struct RingSeries {
    cap: usize,
    stride: u64,
    bins: Vec<SeriesBin>,
    current: Option<SeriesBin>,
    total_samples: u64,
}

impl RingSeries {
    /// An empty ring holding at most `cap` closed bins (`cap` is
    /// rounded up to an even minimum of 2 so pair-folding is exact).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(2);
        let cap = cap + (cap & 1);
        RingSeries {
            cap,
            stride: 1,
            bins: Vec::new(),
            current: None,
            total_samples: 0,
        }
    }

    /// Folds one reading in.
    pub fn push(&mut self, t: SimTime, v: f64) {
        self.total_samples += 1;
        match &mut self.current {
            Some(bin) => bin.fold(v),
            None => self.current = Some(SeriesBin::one(t, v)),
        }
        let full = self
            .current
            .as_ref()
            .is_some_and(|b| b.samples >= self.stride);
        if full {
            if let Some(bin) = self.current.take() {
                self.bins.push(bin);
            }
            if self.bins.len() >= self.cap {
                self.downsample();
            }
        }
    }

    /// Folds adjacent bin pairs 2:1 and doubles the stride.
    fn downsample(&mut self) {
        let mut folded = Vec::with_capacity(self.bins.len() / 2 + 1);
        let mut it = self.bins.drain(..);
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => folded.push(SeriesBin::merge(a, b)),
                None => folded.push(a),
            }
        }
        drop(it);
        self.bins = folded;
        self.stride *= 2;
    }

    /// Closed bins plus the in-progress one, oldest first.
    pub fn bins(&self) -> Vec<SeriesBin> {
        let mut out = self.bins.clone();
        if let Some(cur) = self.current {
            out.push(cur);
        }
        out
    }

    /// Raw readings folded in since creation.
    pub fn total_samples(&self) -> u64 {
        self.total_samples
    }

    /// Exact minimum over every reading ever pushed.
    pub fn global_min(&self) -> Option<f64> {
        self.bins()
            .iter()
            .map(|b| b.min)
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.min(v)))
            })
    }

    /// Exact maximum over every reading ever pushed.
    pub fn global_max(&self) -> Option<f64> {
        self.bins()
            .iter()
            .map(|b| b.max)
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.max(v)))
            })
    }

    /// The most recent reading.
    pub fn last(&self) -> Option<f64> {
        self.current
            .as_ref()
            .map(|b| b.last)
            .or_else(|| self.bins.last().map(|b| b.last))
    }
}

// ---------------------------------------------------------------------------
// Incidents
// ---------------------------------------------------------------------------

/// One SLO violation episode: opened on the first violating tick,
/// extended while violations continue, closed on the first clean tick.
#[derive(Clone, Debug)]
pub struct Incident {
    /// Rule family (`WD_*`).
    pub rule: &'static str,
    /// The watched path.
    pub path: String,
    /// First violating tick.
    pub opened_at: SimTime,
    /// First clean tick after the episode (`None` while open).
    pub closed_at: Option<SimTime>,
    /// Worst offending reading inside the episode.
    pub observed: f64,
    /// The rule's bound (0 for `Still` rules).
    pub bound: f64,
    /// Injected faults whose padded windows overlap the episode —
    /// the blame set.
    pub faults: Vec<ActiveFault>,
    /// True when at least one injected fault overlaps: the violation
    /// is *explained*. An unattributed incident is a regression.
    pub attributed: bool,
}

// ---------------------------------------------------------------------------
// Watchdog engine
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, Default)]
struct RuleState {
    prev: Option<f64>,
    /// Consecutive no-progress ticks above the floor (Stuck rules).
    stuck_streak: u32,
    /// Index into the incident log while an episode is open;
    /// `usize::MAX` marks an episode whose record was dropped by the
    /// capacity bound (still tracked so it opens/closes once).
    open: Option<usize>,
}

/// Online evaluator of [`WatchdogRule`]s with a bounded incident log.
#[derive(Clone, Debug)]
pub struct WatchdogEngine {
    rules: Vec<(WatchdogRule, RuleState)>,
    incidents: Vec<Incident>,
    incident_cap: usize,
    pad: SimDuration,
    /// Episodes opened, per rule name (survives record drops).
    opened: BTreeMap<&'static str, u64>,
    dropped: u64,
}

impl WatchdogEngine {
    /// Builds the engine over a rule set.
    pub fn new(rules: Vec<WatchdogRule>, incident_cap: usize, pad: SimDuration) -> Self {
        WatchdogEngine {
            rules: rules
                .into_iter()
                .map(|r| (r, RuleState::default()))
                .collect(),
            incidents: Vec::new(),
            incident_cap,
            pad,
            opened: BTreeMap::new(),
            dropped: 0,
        }
    }

    /// Feeds one tick of readings. `values` maps sampled paths to this
    /// tick's readings; a rule whose path is absent is skipped (its
    /// state holds).
    pub fn observe_tick(
        &mut self,
        t: SimTime,
        values: &BTreeMap<String, f64>,
        faults: &FaultPlan,
    ) {
        let pad = self.pad;
        for (rule, state) in &mut self.rules {
            let Some(&value) = values.get(&rule.path) else {
                continue;
            };
            let (violated, observed, bound) = match rule.check {
                RuleCheck::Still => {
                    let grew = state.prev.is_some_and(|p| value > p + 1e-9);
                    let step = state.prev.map_or(0.0, |p| value - p);
                    (grew, step, 0.0)
                }
                RuleCheck::Below { bound } => (value > bound, value, bound),
                RuleCheck::RateBelow { bound } => {
                    let step = state.prev.map_or(0.0, |p| value - p);
                    (state.prev.is_some() && step > bound, step, bound)
                }
                RuleCheck::Stuck { floor, within } => {
                    if value > floor && state.prev.is_some_and(|p| p == value) {
                        state.stuck_streak = state.stuck_streak.saturating_add(1);
                    } else {
                        state.stuck_streak = 0;
                    }
                    (state.stuck_streak >= within, value, floor)
                }
            };
            state.prev = Some(value);
            match (violated, state.open) {
                (true, None) => {
                    *self.opened.entry(rule.name).or_insert(0) += 1;
                    let blame = faults.active_in(t - pad, t + pad);
                    if self.incidents.len() < self.incident_cap {
                        self.incidents.push(Incident {
                            rule: rule.name,
                            path: rule.path.clone(),
                            opened_at: t,
                            closed_at: None,
                            observed,
                            bound,
                            attributed: !blame.is_empty(),
                            faults: blame,
                        });
                        state.open = Some(self.incidents.len() - 1);
                    } else {
                        self.dropped += 1;
                        state.open = Some(usize::MAX);
                    }
                }
                (true, Some(idx)) => {
                    if let Some(inc) = self.incidents.get_mut(idx) {
                        if observed.abs() > inc.observed.abs() {
                            inc.observed = observed;
                        }
                        for f in faults.active_in(t - pad, t + pad) {
                            if !inc.faults.contains(&f) {
                                inc.faults.push(f);
                            }
                        }
                        inc.attributed = !inc.faults.is_empty();
                    }
                }
                (false, Some(idx)) => {
                    if let Some(inc) = self.incidents.get_mut(idx) {
                        inc.closed_at = Some(t);
                    }
                    state.open = None;
                }
                (false, None) => {}
            }
        }
    }

    /// The incident log, in open order.
    pub fn incidents(&self) -> &[Incident] {
        &self.incidents
    }

    /// Episodes opened per rule (counts survive record drops).
    pub fn opened_counts(&self) -> &BTreeMap<&'static str, u64> {
        &self.opened
    }

    /// Incident records dropped by the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

// ---------------------------------------------------------------------------
// Sampler
// ---------------------------------------------------------------------------

/// The per-epoch sampler: resolves each followed [`SeriesSpec`] against
/// one tick's readings (Level as-is, Delta against the previous raw
/// reading) and folds the result into that spec's [`RingSeries`].
#[derive(Clone, Debug)]
pub struct TimeSeriesSampler {
    specs: Vec<SeriesSpec>,
    series: Vec<(String, RingSeries)>,
    /// Last raw reading per Delta path.
    prev_raw: BTreeMap<String, f64>,
}

impl TimeSeriesSampler {
    /// Builds a sampler over `specs` with `ring_capacity` bins each.
    pub fn new(specs: Vec<SeriesSpec>, ring_capacity: usize) -> Self {
        let series = specs
            .iter()
            .map(|s| (s.path.clone(), RingSeries::new(ring_capacity)))
            .collect();
        TimeSeriesSampler {
            specs,
            series,
            prev_raw: BTreeMap::new(),
        }
    }

    /// Folds one tick of readings in. Paths absent from `values` are
    /// skipped (their rings and Delta state hold).
    pub fn ingest(&mut self, t: SimTime, values: &BTreeMap<String, f64>) {
        let mut tick: BTreeMap<&str, f64> = BTreeMap::new();
        for spec in &self.specs {
            let Some(&raw) = values.get(&spec.path) else {
                continue;
            };
            let v = match spec.kind {
                SeriesKind::Level => raw,
                SeriesKind::Delta => {
                    let prev = self.prev_raw.insert(spec.path.clone(), raw).unwrap_or(0.0);
                    raw - prev
                }
            };
            tick.insert(spec.path.as_str(), v);
        }
        for (path, ring) in &mut self.series {
            if let Some(&v) = tick.get(path.as_str()) {
                ring.push(t, v);
            }
        }
    }

    /// The followed series, in config order.
    pub fn series(&self) -> &[(String, RingSeries)] {
        &self.series
    }
}

// ---------------------------------------------------------------------------
// The scope: sampler + watchdogs
// ---------------------------------------------------------------------------

/// The per-deployment scope: ring-buffered time series plus the
/// watchdog engine, fed once per epoch from the snapshot tree.
#[derive(Clone, Debug)]
pub struct PrestoScope {
    config: ScopeConfig,
    sampler: TimeSeriesSampler,
    /// Externally supplied readings merged over the snapshot at each
    /// tick (scenario probes the tree cannot see).
    feeds: BTreeMap<String, f64>,
    watchdog: WatchdogEngine,
    /// Deduplicated union of every series and rule path: the only keys
    /// `sample` reads out of the snapshot, so a tick costs a few tree
    /// walks instead of a full flatten.
    paths: Vec<String>,
    ticks: u64,
}

impl PrestoScope {
    /// Builds a scope. Disabled configs build an inert scope whose
    /// every method returns immediately.
    pub fn new(config: ScopeConfig) -> Self {
        let sampler = TimeSeriesSampler::new(
            if config.enabled {
                config.series.clone()
            } else {
                Vec::new()
            },
            config.ring_capacity,
        );
        let watchdog = WatchdogEngine::new(
            if config.enabled {
                config.rules.clone()
            } else {
                Vec::new()
            },
            config.incident_capacity,
            config.attribution_pad,
        );
        let paths = if config.enabled {
            let mut seen = std::collections::BTreeSet::new();
            config
                .series
                .iter()
                .map(|s| s.path.as_str())
                .chain(config.rules.iter().map(|r| r.path.as_str()))
                .filter(|p| seen.insert(p.to_string()))
                .map(str::to_string)
                .collect()
        } else {
            Vec::new()
        };
        PrestoScope {
            sampler,
            feeds: BTreeMap::new(),
            watchdog,
            paths,
            ticks: 0,
            config,
        }
    }

    /// Whether the scope is live.
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    /// Whether any followed path lives under the top-level snapshot
    /// section `root`. Snapshot builders use this to observe only the
    /// subtrees a tick will actually read.
    pub fn needs_root(&self, root: &str) -> bool {
        self.paths
            .iter()
            .any(|p| p.split('.').next() == Some(root))
    }

    /// Supplies an external reading for the next tick (overrides a
    /// same-named snapshot path). Values persist until overwritten.
    pub fn feed(&mut self, path: &str, value: f64) {
        if self.config.enabled {
            self.feeds.insert(path.to_string(), value);
        }
    }

    /// One epoch tick: read every followed path out of `snap` (plus
    /// feeds), fold into the rings, and run the watchdogs with `faults`
    /// as the blame context.
    pub fn sample(&mut self, t: SimTime, snap: &Snapshot, faults: &FaultPlan) {
        if !self.config.enabled {
            return;
        }
        self.ticks += 1;
        let mut values: BTreeMap<String, f64> = BTreeMap::new();
        for path in &self.paths {
            if let Some(v) = snap.get(path) {
                values.insert(path.clone(), v);
            }
        }
        for (k, v) in &self.feeds {
            values.insert(k.clone(), *v);
        }
        self.sampler.ingest(t, &values);
        // Rules read the *raw* readings: counters stay cumulative for
        // Still rules, watermark rules read levels directly.
        self.watchdog.observe_tick(t, &values, faults);
    }

    /// The followed series, in config order.
    pub fn series(&self) -> &[(String, RingSeries)] {
        self.sampler.series()
    }

    /// The incident log.
    pub fn incidents(&self) -> &[Incident] {
        self.watchdog.incidents()
    }

    /// Incidents not explained by any injected fault.
    pub fn unattributed_incidents(&self) -> usize {
        self.watchdog
            .incidents()
            .iter()
            .filter(|i| !i.attributed)
            .count()
    }

    /// The watchdog engine (counts, drops).
    pub fn watchdog(&self) -> &WatchdogEngine {
        &self.watchdog
    }

    /// Epoch ticks sampled.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }
}

impl Observe for PrestoScope {
    fn observe(&self, s: &mut Section) {
        if !self.config.enabled {
            return;
        }
        s.counter("ticks", self.ticks);
        s.counter("series", self.sampler.series().len() as u64);
        s.counter("incidents_total", self.watchdog.incidents().len() as u64);
        s.counter(
            "incidents_open",
            self.watchdog
                .incidents()
                .iter()
                .filter(|i| i.closed_at.is_none())
                .count() as u64,
        );
        s.counter("incidents_unattributed", self.unattributed_incidents() as u64);
        s.counter("incidents_dropped", self.watchdog.dropped());
        let by_rule = s.child("incidents");
        for (name, n) in self.watchdog.opened_counts() {
            by_rule.counter(name, *n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn tick(vals: &[(&str, f64)]) -> BTreeMap<String, f64> {
        vals.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn ring_preserves_min_max_last_through_downsampling() {
        let mut r = RingSeries::new(4);
        let stream: Vec<f64> = (0..100).map(|i| ((i * 37) % 19) as f64 - 9.0).collect();
        for (i, &v) in stream.iter().enumerate() {
            r.push(t(i as u64), v);
        }
        let exact_min = stream.iter().cloned().fold(f64::INFINITY, f64::min);
        let exact_max = stream.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(r.global_min(), Some(exact_min));
        assert_eq!(r.global_max(), Some(exact_max));
        assert_eq!(r.last(), stream.last().copied());
        assert_eq!(r.total_samples(), stream.len() as u64);
        assert!(r.bins().len() <= 5, "ring must stay bounded: {}", r.bins().len());
        let total: u64 = r.bins().iter().map(|b| b.samples).sum();
        assert_eq!(total, stream.len() as u64, "no reading may be discarded");
    }

    #[test]
    fn ring_bins_stay_time_ordered() {
        let mut r = RingSeries::new(2);
        for i in 0..50u64 {
            r.push(t(i * 31), i as f64);
        }
        let bins = r.bins();
        assert!(bins.windows(2).all(|w| w[0].t <= w[1].t));
    }

    // Fixture: WD_STALE_CONFIDENT — a Still rule fires exactly when the
    // counter increases, and the incident closes when it stops.
    #[test]
    fn wd_stale_confident_fires_on_counter_growth() {
        let rule = WatchdogRule::still(WD_STALE_CONFIDENT, "probe.stale");
        let mut e = WatchdogEngine::new(vec![rule], 16, SimDuration::from_mins(5));
        let plan = FaultPlan::none();
        e.observe_tick(t(0), &tick(&[("probe.stale", 0.0)]), &plan);
        e.observe_tick(t(31), &tick(&[("probe.stale", 0.0)]), &plan);
        assert!(e.incidents().is_empty(), "a still counter must not alarm");
        e.observe_tick(t(62), &tick(&[("probe.stale", 2.0)]), &plan);
        assert_eq!(e.incidents().len(), 1);
        assert_eq!(e.incidents()[0].rule, WD_STALE_CONFIDENT);
        assert_eq!(e.incidents()[0].observed, 2.0);
        assert!(!e.incidents()[0].attributed, "no faults injected");
        e.observe_tick(t(93), &tick(&[("probe.stale", 2.0)]), &plan);
        assert_eq!(e.incidents()[0].closed_at, Some(t(93)));
        assert_eq!(e.incidents().len(), 1, "episodes merge consecutive ticks");
    }

    // Fixture: WD_ANSWER_AGE_P99 — a Below rule opens while the reading
    // exceeds the bound and records the peak.
    #[test]
    fn wd_answer_age_p99_watermark_tracks_peak() {
        let rule = WatchdogRule::below(WD_ANSWER_AGE_P99, "router.age_p99", 100.0);
        let mut e = WatchdogEngine::new(vec![rule], 16, SimDuration::from_mins(5));
        let plan = FaultPlan::none();
        for (i, v) in [50.0, 150.0, 300.0, 120.0, 80.0].into_iter().enumerate() {
            e.observe_tick(t(i as u64 * 31), &tick(&[("router.age_p99", v)]), &plan);
        }
        assert_eq!(e.incidents().len(), 1);
        let inc = &e.incidents()[0];
        assert_eq!(inc.opened_at, t(31));
        assert_eq!(inc.closed_at, Some(t(124)));
        assert_eq!(inc.observed, 300.0);
        assert_eq!(inc.bound, 100.0);
    }

    // Fixture: WD_LEAK_PROBE — a Stuck rule ignores moving queues and
    // fires only when a nonzero gauge stops making progress.
    #[test]
    fn wd_leak_probe_needs_no_progress() {
        let rule = WatchdogRule::stuck(WD_LEAK_PROBE, "leaks.open", 0.0, 3);
        let mut e = WatchdogEngine::new(vec![rule], 16, SimDuration::from_mins(5));
        let plan = FaultPlan::none();
        // Busy but moving: never fires.
        for (i, v) in [5.0, 7.0, 6.0, 9.0, 4.0].into_iter().enumerate() {
            e.observe_tick(t(i as u64 * 31), &tick(&[("leaks.open", v)]), &plan);
        }
        assert!(e.incidents().is_empty());
        // Stuck at 4.0 for `within` ticks: leak.
        for i in 5..10u64 {
            e.observe_tick(t(i * 31), &tick(&[("leaks.open", 4.0)]), &plan);
        }
        assert_eq!(e.incidents().len(), 1);
        assert_eq!(e.incidents()[0].rule, WD_LEAK_PROBE);
        // Draining to zero closes it.
        e.observe_tick(t(310), &tick(&[("leaks.open", 0.0)]), &plan);
        assert!(e.incidents()[0].closed_at.is_some());
    }

    // Fixture: WD_PRESSURE_WATERMARK — Below over a smoothed pressure
    // gauge.
    #[test]
    fn wd_pressure_watermark_fires_over_watermark() {
        let rule = WatchdogRule::below(WD_PRESSURE_WATERMARK, "scope.pressure_max", 200.0);
        let mut e = WatchdogEngine::new(vec![rule], 16, SimDuration::from_mins(5));
        let plan = FaultPlan::none();
        e.observe_tick(t(0), &tick(&[("scope.pressure_max", 12.0)]), &plan);
        assert!(e.incidents().is_empty());
        e.observe_tick(t(31), &tick(&[("scope.pressure_max", 900.0)]), &plan);
        assert_eq!(e.incidents().len(), 1);
        assert_eq!(e.incidents()[0].rule, WD_PRESSURE_WATERMARK);
    }

    // Fixture: WD_SHED_EPISODE_WATERMARK — RateBelow over the
    // cumulative episode counter: slow accretion is fine, a flap storm
    // inside one tick is not.
    #[test]
    fn wd_shed_episode_watermark_bounds_flap_rate() {
        let rule =
            WatchdogRule::rate_below(WD_SHED_EPISODE_WATERMARK, "fleet_router.shed_episodes", 8.0);
        let mut e = WatchdogEngine::new(vec![rule], 16, SimDuration::from_mins(5));
        let plan = FaultPlan::none();
        e.observe_tick(t(0), &tick(&[("fleet_router.shed_episodes", 3.0)]), &plan);
        e.observe_tick(t(31), &tick(&[("fleet_router.shed_episodes", 8.0)]), &plan);
        assert!(e.incidents().is_empty(), "+5 per tick is under the bound");
        e.observe_tick(t(62), &tick(&[("fleet_router.shed_episodes", 30.0)]), &plan);
        assert_eq!(e.incidents().len(), 1, "+22 in one tick is a flap storm");
        assert_eq!(e.incidents()[0].rule, WD_SHED_EPISODE_WATERMARK);
        assert_eq!(e.incidents()[0].observed, 22.0);
    }

    // Fixture: WD_FENCED_WHILE_SERVING — a Still rule over the fenced
    // admission counter, attributed to the partition that caused it.
    #[test]
    fn wd_fenced_while_serving_attributes_to_the_partition() {
        let rule = WatchdogRule::still(WD_FENCED_WHILE_SERVING, "fleet_router.failed_fenced");
        let mut e = WatchdogEngine::new(vec![rule], 16, SimDuration::from_mins(5));
        let plan = FaultPlan::none().with_mesh_partition(
            vec![2],
            SimTime::from_secs(100),
            SimTime::from_secs(400),
        );
        e.observe_tick(t(50), &tick(&[("fleet_router.failed_fenced", 0.0)]), &plan);
        e.observe_tick(t(150), &tick(&[("fleet_router.failed_fenced", 3.0)]), &plan);
        assert_eq!(e.incidents().len(), 1);
        let inc = &e.incidents()[0];
        assert!(inc.attributed, "the cut was active: {inc:?}");
        assert!(
            inc.faults
                .iter()
                .any(|f| matches!(f, ActiveFault::MeshPartition { .. })),
            "blame set must name the partition: {:?}",
            inc.faults
        );
    }

    #[test]
    fn incident_log_is_bounded_but_counts_survive() {
        let rule = WatchdogRule::below(WD_PRESSURE_WATERMARK, "p", 10.0);
        let mut e = WatchdogEngine::new(vec![rule], 2, SimDuration::from_mins(5));
        let plan = FaultPlan::none();
        for i in 0..10u64 {
            // Alternate violating / clean ticks: 5 distinct episodes.
            let v = if i % 2 == 0 { 100.0 } else { 0.0 };
            e.observe_tick(t(i * 31), &tick(&[("p", v)]), &plan);
        }
        assert_eq!(e.incidents().len(), 2, "log bounded");
        assert_eq!(e.dropped(), 3);
        assert_eq!(e.opened_counts()[WD_PRESSURE_WATERMARK], 5);
    }

    #[test]
    fn scope_samples_feeds_and_snapshot_paths() {
        let mut scope = PrestoScope::new(ScopeConfig {
            enabled: true,
            series: vec![
                SeriesSpec::level("demo.gauge"),
                SeriesSpec::delta("demo.counter"),
                SeriesSpec::level("fed.value"),
            ],
            rules: vec![WatchdogRule::still(WD_STALE_CONFIDENT, "fed.value")],
            ..ScopeConfig::default()
        });
        let plan = FaultPlan::none();
        let mut snap = Snapshot::new();
        snap.root.child("demo").gauge("gauge", 5.0);
        snap.root.child("demo").counter("counter", 10);
        scope.feed("fed.value", 0.0);
        scope.sample(t(0), &snap, &plan);
        let mut snap2 = Snapshot::new();
        snap2.root.child("demo").gauge("gauge", 7.0);
        snap2.root.child("demo").counter("counter", 25);
        scope.feed("fed.value", 1.0);
        scope.sample(t(31), &snap2, &plan);

        let series: BTreeMap<&str, &RingSeries> = scope
            .series()
            .iter()
            .map(|(k, r)| (k.as_str(), r))
            .collect();
        assert_eq!(series["demo.gauge"].last(), Some(7.0));
        // Delta: first tick records the raw reading, second the step.
        assert_eq!(series["demo.counter"].global_max(), Some(15.0));
        assert_eq!(series["fed.value"].last(), Some(1.0));
        assert_eq!(scope.incidents().len(), 1, "fed counter grew");
        assert_eq!(scope.ticks(), 2);

        let mut s = Section::default();
        scope.observe(&mut s);
        assert_eq!(s.get_counter("incidents_total"), Some(1));
        assert_eq!(s.get_counter("incidents_unattributed"), Some(1));
    }

    #[test]
    fn disabled_scope_is_inert() {
        let mut scope = PrestoScope::new(ScopeConfig {
            series: vec![SeriesSpec::level("x")],
            rules: vec![WatchdogRule::still(WD_STALE_CONFIDENT, "x")],
            ..ScopeConfig::default()
        });
        let snap = Snapshot::new();
        scope.feed("x", 5.0);
        scope.sample(t(0), &snap, &FaultPlan::none());
        assert_eq!(scope.ticks(), 0);
        assert!(scope.series().is_empty());
        assert!(scope.incidents().is_empty());
        let mut s = Section::default();
        scope.observe(&mut s);
        assert_eq!(s.get_counter("ticks"), None, "disabled scope exports nothing");
    }
}
