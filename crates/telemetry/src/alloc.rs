//! A counting global allocator for allocations-per-epoch accounting.
//!
//! The ROADMAP's scale-harness item wants an allocations/epoch figure
//! in every `BENCH_*.json` so the planned allocation-free pump has a
//! trajectory to beat. Scenario binaries opt in with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: presto_telemetry::alloc::CountingAlloc =
//!     presto_telemetry::alloc::CountingAlloc;
//! ```
//!
//! and read [`allocation_count`] before/after the measured phase. The
//! counters are relaxed atomics — cheap enough to leave on for a whole
//! scenario run — and the type delegates straight to the system
//! allocator, so behavior is otherwise unchanged.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-delegating allocator that counts allocations and bytes.
pub struct CountingAlloc;

// SAFETY: delegates every operation unchanged to the system allocator;
// only the relaxed counters are added.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Heap allocations made since process start (0 unless the binary
/// installed [`CountingAlloc`]).
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Bytes requested from the heap since process start.
pub fn allocated_bytes() -> u64 {
    ALLOCATED_BYTES.load(Ordering::Relaxed)
}
