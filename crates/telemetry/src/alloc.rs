//! A counting global allocator for allocations-per-epoch accounting.
//!
//! The ROADMAP's scale-harness item wants an allocations/epoch figure
//! in every `BENCH_*.json` so the planned allocation-free pump has a
//! trajectory to beat. Scenario binaries opt in with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: presto_telemetry::alloc::CountingAlloc =
//!     presto_telemetry::alloc::CountingAlloc;
//! ```
//!
//! and read [`allocation_count`] before/after the measured phase. The
//! counters are relaxed atomics — cheap enough to leave on for a whole
//! scenario run — and the type delegates straight to the system
//! allocator, so behavior is otherwise unchanged.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-delegating allocator that counts allocations and bytes.
pub struct CountingAlloc;

/// Folds a live-byte reading into the high-water mark.
///
/// Relaxed `fetch_max` keeps the mark monotone; under concurrent
/// allocation the reading itself may be momentarily stale, so the mark
/// is a proxy for peak RSS, not an exact accounting — which is all the
/// BENCH export needs.
fn note_live(live: u64) {
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

// SAFETY: `GlobalAlloc`'s contract has two halves, and this impl satisfies
// both by construction:
//
// 1. *Allocator correctness* — every method forwards its arguments verbatim
//    to [`System`] and returns `System`'s result unmodified. No pointer is
//    created, offset, cached, or retired here, and no layout is altered, so
//    the memory this type hands out is exactly the memory `System` hands
//    out: `alloc` returns either null or a block valid for `layout`,
//    `dealloc`/`realloc` pass the caller's `(ptr, layout)` pair straight
//    through, and the caller's obligations (matching layout on free,
//    non-zero sizes) transfer 1:1 onto `System`, which upholds them.
//
// 2. *No reentrant allocation, no panics, no TLS* — a `GlobalAlloc` method
//    must not itself allocate (infinite recursion), unwind, or touch
//    thread-local state that may be torn down during thread exit. The only
//    added work is `fetch_add`/`fetch_sub`/`fetch_max(Relaxed)` on four
//    `static` process-lifetime atomics: lock-free, allocation-free,
//    panic-free, and TLS-free (`note_live` is a plain fn over a `static`,
//    not TLS, and cannot unwind). Relaxed ordering is sound because the
//    counters are monotone-or-approximate telemetry read after the
//    measured phase completes — they impose no synchronization edge that
//    correctness depends on.
//
// `dealloc` deliberately does not decrement `ALLOCATIONS`/`ALLOCATED_BYTES`:
// those report cumulative allocation traffic (allocations/epoch). Live-heap
// size is tracked separately in `LIVE_BYTES` (decremented on free), whose
// running maximum `PEAK_BYTES` is the peak-RSS proxy the BENCH exports use.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        let live = LIVE_BYTES
            .fetch_add(layout.size() as u64, Ordering::Relaxed)
            .wrapping_add(layout.size() as u64);
        note_live(live);
        // SAFETY: caller obligations (`layout` has non-zero size) are
        // forwarded unchanged from our own caller.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        // SAFETY: `ptr` was returned by `self.alloc`/`self.realloc`, which
        // delegate to `System`, so it is a `System` block with this layout.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        // Model realloc as free(old) + alloc(new) for live accounting.
        LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        let live = LIVE_BYTES
            .fetch_add(new_size as u64, Ordering::Relaxed)
            .wrapping_add(new_size as u64);
        note_live(live);
        // SAFETY: as in `dealloc`, `ptr` is a live `System` block matching
        // `layout`, and `new_size` obligations forward from our caller.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Heap allocations made since process start (0 unless the binary
/// installed [`CountingAlloc`]).
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Bytes requested from the heap since process start.
pub fn allocated_bytes() -> u64 {
    ALLOCATED_BYTES.load(Ordering::Relaxed)
}

/// Bytes currently live on the heap (allocated minus freed). A relaxed
/// approximation under concurrency; exact in single-threaded scenario
/// binaries.
pub fn live_bytes() -> u64 {
    LIVE_BYTES.load(Ordering::Relaxed)
}

/// High-water mark of [`live_bytes`] since process start — the
/// peak-RSS proxy the BENCH exports report (0 unless the binary
/// installed [`CountingAlloc`]).
pub fn peak_bytes() -> u64 {
    PEAK_BYTES.load(Ordering::Relaxed)
}
