//! Phase timers and per-epoch work counts over the epoch pump.
//!
//! The deployment's hot path is a fixed sequence of phases
//! (`step_epoch_core`, `pump_pipelines`, `pump_queries`, membership
//! step, mesh delivery, …). The profiler wraps each in a wall-clock
//! timer plus optional item counts (downlink attempts, RPCs issued),
//! so "where did this epoch's time go" is one read-out — and hot-path
//! regressions surface before the scale-harness PR. Disabled, it never
//! reads the clock: [`EpochProfiler::begin`] returns `None` and every
//! other call returns immediately.

use std::time::{Duration, Instant};

use crate::alloc::allocation_count;
use crate::metrics::{Observe, Section};

/// Accumulated cost of one named phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Times the phase ran.
    pub calls: u64,
    /// Total wall-clock microseconds spent in it.
    pub micros: u64,
    /// Items processed (attempts, messages — phase-defined).
    pub items: u64,
    /// Heap allocations made inside the phase (0 unless the binary
    /// installed [`crate::alloc::CountingAlloc`]).
    pub allocs: u64,
}

/// An in-flight phase measurement: wall-clock start plus the global
/// allocation count at entry. Opaque to call sites — pass it straight
/// from [`EpochProfiler::begin`] to [`EpochProfiler::end`].
#[derive(Clone, Copy, Debug)]
pub struct PhaseToken {
    started: Instant,
    allocs_at_start: u64,
}

/// The per-deployment phase profiler.
#[derive(Clone, Debug)]
pub struct EpochProfiler {
    enabled: bool,
    /// Insertion-ordered so reports read in pipeline order.
    phases: Vec<(&'static str, PhaseStat)>,
    epochs: u64,
}

impl EpochProfiler {
    /// Creates a profiler; disabled it never reads the clock.
    pub fn new(enabled: bool) -> Self {
        EpochProfiler {
            enabled,
            phases: Vec::new(),
            epochs: 0,
        }
    }

    /// Whether profiling is on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Starts a phase measurement (`None` when disabled — pass it
    /// straight to [`EpochProfiler::end`]).
    pub fn begin(&self) -> Option<PhaseToken> {
        if self.enabled {
            Some(PhaseToken {
                started: Instant::now(),
                allocs_at_start: allocation_count(),
            })
        } else {
            None
        }
    }

    /// Stops a phase measurement started by [`EpochProfiler::begin`].
    pub fn end(&mut self, name: &'static str, token: Option<PhaseToken>) {
        let Some(token) = token else { return };
        let elapsed = token.started.elapsed();
        let allocs = allocation_count().saturating_sub(token.allocs_at_start);
        let stat = self.entry(name);
        stat.calls += 1;
        stat.micros += elapsed.as_micros() as u64;
        stat.allocs += allocs;
    }

    /// Adds `n` items to a phase's work count.
    pub fn count(&mut self, name: &'static str, n: u64) {
        if self.enabled && n > 0 {
            self.entry(name).items += n;
        }
    }

    /// Marks one epoch completed (the per-epoch denominators).
    pub fn epoch(&mut self) {
        if self.enabled {
            self.epochs += 1;
        }
    }

    /// Epochs profiled.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// The accumulated phases, in first-seen order.
    pub fn phases(&self) -> &[(&'static str, PhaseStat)] {
        &self.phases
    }

    /// One phase's stat.
    pub fn phase(&self, name: &str) -> Option<&PhaseStat> {
        self.phases.iter().find(|(n, _)| *n == name).map(|(_, s)| s)
    }

    /// Total wall-clock time across all phases.
    pub fn total(&self) -> Duration {
        Duration::from_micros(self.phases.iter().map(|(_, s)| s.micros).sum())
    }

    fn entry(&mut self, name: &'static str) -> &mut PhaseStat {
        if let Some(i) = self.phases.iter().position(|(n, _)| *n == name) {
            return &mut self.phases[i].1;
        }
        self.phases.push((name, PhaseStat::default()));
        &mut self.phases.last_mut().expect("just pushed").1
    }
}

impl Observe for EpochProfiler {
    fn observe(&self, s: &mut Section) {
        s.counter("epochs", self.epochs);
        for (name, stat) in &self.phases {
            let c = s.child(name);
            c.counter("calls", stat.calls);
            c.counter("micros", stat.micros);
            c.counter("items", stat.items);
            c.counter("allocs", stat.allocs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_never_times() {
        let mut p = EpochProfiler::new(false);
        let t = p.begin();
        assert!(t.is_none());
        p.end("x", t);
        p.count("x", 5);
        p.epoch();
        assert!(p.phases().is_empty());
        assert_eq!(p.epochs(), 0);
    }

    #[test]
    fn phases_accumulate_in_order() {
        let mut p = EpochProfiler::new(true);
        let t = p.begin();
        p.end("core", t);
        let t = p.begin();
        p.end("pump", t);
        p.count("pump", 3);
        p.count("pump", 2);
        let t = p.begin();
        p.end("core", t);
        p.epoch();
        let names: Vec<&str> = p.phases().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["core", "pump"]);
        assert_eq!(p.phase("core").unwrap().calls, 2);
        assert_eq!(p.phase("pump").unwrap().items, 5);
        assert_eq!(p.epochs(), 1);

        let mut s = Section::default();
        p.observe(&mut s);
        assert_eq!(s.get_counter("epochs"), Some(1));
        assert_eq!(s.get_child("pump").unwrap().get_counter("items"), Some(5));
    }
}
