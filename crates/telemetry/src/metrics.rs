//! The unified metrics registry: counters, gauges, log-linear-bucket
//! histograms, and the [`Snapshot`] tree they assemble into.
//!
//! Design constraints, in order:
//!
//! * **Zero dependencies.** Everything here is plain `std` so every
//!   crate in the workspace can report without pulling anything in.
//! * **Mergeable.** Multi-proxy deployments observe per-proxy stats
//!   into one tree; counters add, histograms merge bucket-wise, and a
//!   merged histogram is *exactly* the histogram of the concatenated
//!   samples (bucket counts are exact — only the quantile read-out
//!   quantizes).
//! * **Bounded error.** Histogram buckets are log-linear (16 linear
//!   sub-buckets per power of two), so a reported percentile is within
//!   one bucket width — ≤ 1/16 ≈ 6.25% relative — of the exact
//!   nearest-rank percentile of the recorded samples.

use std::collections::BTreeMap;

use presto_sim::SimDuration;

/// Linear sub-buckets per octave, as a bit count: 2^4 = 16 sub-buckets,
/// bounding the relative quantization error of a quantile read-out at
/// 1/16 of the value.
const SUB_BITS: u32 = 4;
const SUBS: u64 = 1 << SUB_BITS;

/// A log-linear-bucket histogram over `u64` observations.
///
/// Values below 16 land in exact unit buckets; above that, each power
/// of two splits into 16 linear sub-buckets. Bucket *counts* are exact,
/// so [`LogHistogram::merge`] of two histograms equals the histogram of
/// the concatenated samples (`PartialEq`-checkable); only quantile
/// read-outs quantize, to the containing bucket's upper bound (clamped
/// to the recorded maximum).
///
/// Durations record as microseconds via [`LogHistogram::record_duration`]
/// and read back as fractional seconds via [`LogHistogram::quantile_secs`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogHistogram {
    /// Sparse bucket-index → count map (sorted, so quantile walks are
    /// in value order).
    buckets: BTreeMap<u32, u64>,
    count: u64,
    sum: u128,
    /// Exact extrema (`min` is `u64::MAX` while empty).
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: BTreeMap::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Index of the bucket containing `v`.
fn bucket_index(v: u64) -> u32 {
    if v < SUBS {
        return v as u32;
    }
    let msb = 63 - v.leading_zeros();
    let group = msb - SUB_BITS + 1;
    let sub = ((v >> (msb - SUB_BITS)) as u32) & (SUBS as u32 - 1);
    (group << SUB_BITS) + sub
}

/// Inclusive `[lower, upper]` value bounds of bucket `index`.
fn bucket_bounds(index: u32) -> (u64, u64) {
    if index < SUBS as u32 {
        return (index as u64, index as u64);
    }
    let group = (index >> SUB_BITS) as u64;
    let sub = (index as u64) & (SUBS - 1);
    let shift = group - 1;
    let lower = (SUBS + sub) << shift;
    // `lower + width - 1`, never past `u64::MAX` (the top bucket ends
    // exactly there), unlike `(SUBS + sub + 1) << shift` which would
    // overflow for it.
    let upper = lower + ((1u64 << shift) - 1);
    (lower, upper)
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        *self.buckets.entry(bucket_index(v)).or_insert(0) += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records a duration as microseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_micros());
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all observations.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Exact minimum observation, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Nearest-rank quantile, `q` in `[0, 1]`; 0 when empty.
    ///
    /// The returned value is the containing bucket's upper bound,
    /// clamped to the recorded maximum — within one bucket width of
    /// the exact nearest-rank quantile of the recorded samples, since
    /// bucket counts are exact.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0;
        for (&idx, &n) in &self.buckets {
            cum += n;
            if cum >= rank {
                return bucket_bounds(idx).1.min(self.max);
            }
        }
        self.max
    }

    /// [`LogHistogram::quantile`] for duration-microsecond histograms,
    /// in fractional seconds.
    pub fn quantile_secs(&self, q: f64) -> f64 {
        self.quantile(q) as f64 / 1e6
    }

    /// The inclusive value bounds of the bucket `v` falls in — the
    /// quantization granularity at that magnitude (test hook for the
    /// one-bucket-width error bound).
    pub fn bucket_bounds_of(v: u64) -> (u64, u64) {
        bucket_bounds(bucket_index(v))
    }

    /// Merges another histogram in. Exact: the result equals the
    /// histogram of the concatenated sample streams.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (&idx, &n) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += n;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A component's slot in the [`Snapshot`] tree: named counters, gauges,
/// histograms, and child sections.
///
/// Counters are *additive*: observing two proxies' stats into the same
/// section sums them, which is exactly the multi-proxy aggregation the
/// bench code wants. Peak-style fields (a per-proxy high-water mark)
/// use [`Section::counter_max`] instead. Gauges are last-write-wins.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Section {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, LogHistogram>,
    children: BTreeMap<String, Section>,
}

impl Section {
    /// Adds `v` to the named counter (creating it at zero).
    pub fn counter(&mut self, name: &str, v: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += v;
    }

    /// Folds `v` into the named counter with `max` (peak aggregation).
    pub fn counter_max(&mut self, name: &str, v: u64) {
        let e = self.counters.entry(name.to_string()).or_insert(0);
        *e = (*e).max(v);
    }

    /// Sets the named gauge (last write wins).
    pub fn gauge(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Merges `h` into the named histogram.
    pub fn histogram(&mut self, name: &str, h: &LogHistogram) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .merge(h);
    }

    /// The named child section, created empty on first use.
    pub fn child(&mut self, name: &str) -> &mut Section {
        self.children.entry(name.to_string()).or_default()
    }

    /// Observes a component into the named child section.
    pub fn observe(&mut self, name: &str, component: &impl Observe) {
        component.observe(self.child(name));
    }

    /// Reads a counter back.
    pub fn get_counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Reads a histogram back.
    pub fn get_histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms.get(name)
    }

    /// Reads a child section back.
    pub fn get_child(&self, name: &str) -> Option<&Section> {
        self.children.get(name)
    }

    /// Merges another section tree in: counters add, gauges last-write,
    /// histograms merge, children recurse.
    pub fn merge(&mut self, other: &Section) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
        for (k, c) in &other.children {
            self.children.entry(k.clone()).or_default().merge(c);
        }
    }

    /// Resolves one dotted path against this subtree without
    /// flattening: child sections first, then a terminal counter or
    /// gauge, then a histogram's derived `.count/.p50/...` field.
    /// Matches what [`Section::flatten_into`] would emit for the key.
    fn get_path(&self, segs: &[&str]) -> Option<f64> {
        match segs {
            [] => None,
            [name] => self
                .counters
                .get(*name)
                .map(|&v| v as f64)
                .or_else(|| self.gauges.get(*name).copied()),
            _ => {
                if let Some(v) = self
                    .children
                    .get(segs[0])
                    .and_then(|c| c.get_path(&segs[1..]))
                {
                    return Some(v);
                }
                if segs.len() == 2 {
                    if let Some(h) = self.histograms.get(segs[0]) {
                        return Some(match segs[1] {
                            "count" => h.count() as f64,
                            "p50" => h.quantile(0.50) as f64,
                            "p90" => h.quantile(0.90) as f64,
                            "p99" => h.quantile(0.99) as f64,
                            "max" => h.max() as f64,
                            "mean" => h.mean(),
                            _ => return None,
                        });
                    }
                }
                None
            }
        }
    }

    fn flatten_into(&self, prefix: &str, out: &mut Vec<(String, f64)>) {
        let key = |name: &str| {
            if prefix.is_empty() {
                name.to_string()
            } else {
                format!("{prefix}.{name}")
            }
        };
        for (k, v) in &self.counters {
            out.push((key(k), *v as f64));
        }
        for (k, v) in &self.gauges {
            out.push((key(k), *v));
        }
        for (k, h) in &self.histograms {
            out.push((key(&format!("{k}.count")), h.count() as f64));
            out.push((key(&format!("{k}.p50")), h.quantile(0.50) as f64));
            out.push((key(&format!("{k}.p90")), h.quantile(0.90) as f64));
            out.push((key(&format!("{k}.p99")), h.quantile(0.99) as f64));
            out.push((key(&format!("{k}.max")), h.max() as f64));
            out.push((key(&format!("{k}.mean")), h.mean()));
        }
        for (k, c) in &self.children {
            c.flatten_into(&key(k), out);
        }
    }
}

/// The assembled telemetry tree for one deployment: a root [`Section`]
/// with a section per tier/component.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// The tree root.
    pub root: Section,
}

impl Snapshot {
    /// Creates an empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Flattens the tree to sorted dotted-path `(key, value)` pairs;
    /// histograms expand to `.count/.p50/.p90/.p99/.max/.mean`.
    pub fn flatten(&self) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        self.root.flatten_into("", &mut out);
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Looks up one flattened key by walking the tree directly — no
    /// allocation, so per-epoch consumers (the presto-scope sampler)
    /// can read a handful of paths without paying for a full flatten.
    pub fn get(&self, path: &str) -> Option<f64> {
        let segs: Vec<&str> = path.split('.').collect();
        self.root.get_path(&segs)
    }

    /// Merges another snapshot in (multi-deployment aggregation).
    pub fn merge(&mut self, other: &Snapshot) {
        self.root.merge(&other.root);
    }

    /// Renders the flattened tree as `key = value` lines.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for (k, v) in self.flatten() {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                s.push_str(&format!("{k} = {v:.0}\n"));
            } else {
                s.push_str(&format!("{k} = {v:.6}\n"));
            }
        }
        s
    }
}

/// Implemented by every component that reports into the snapshot tree.
/// One method replaces thirteen per-struct accessors: the deployment
/// walks its components and each writes its counters into its section.
pub trait Observe {
    /// Writes this component's metrics into `s`.
    fn observe(&self, s: &mut Section);
}

/// Implements [`Observe`] for a plain counter struct by listing its
/// fields: additive fields first, peak-style (`max`-aggregated) fields
/// in an optional `max { .. }` tail.
///
/// ```ignore
/// observe_counters!(PipelineStats {
///     submitted, completed_fast, failed,
/// } max { max_in_flight });
/// ```
#[macro_export]
macro_rules! observe_counters {
    ($ty:ty { $($f:ident),* $(,)? }) => {
        $crate::observe_counters!($ty { $($f),* } max {});
    };
    ($ty:ty { $($f:ident),* $(,)? } max { $($m:ident),* $(,)? }) => {
        impl $crate::Observe for $ty {
            #[allow(clippy::unnecessary_cast)]
            fn observe(&self, s: &mut $crate::Section) {
                $( s.counter(stringify!($f), self.$f as u64); )*
                $( s.counter_max(stringify!($m), self.$m as u64); )*
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        for q10 in 1..=10 {
            let q = q10 as f64 / 10.0;
            let rank = ((q * 16.0).ceil() as u64).clamp(1, 16);
            assert_eq!(h.quantile(q), rank - 1, "q={q}");
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
    }

    #[test]
    fn bucket_bounds_contain_value_and_bound_error() {
        for v in [0u64, 1, 15, 16, 31, 32, 33, 100, 1_000, 123_456, u64::MAX / 3] {
            let (lo, hi) = LogHistogram::bucket_bounds_of(v);
            assert!(lo <= v && v <= hi, "v={v} not in [{lo},{hi}]");
            // Relative width ≤ 1/16 for values ≥ 16.
            if v >= 16 {
                assert!((hi - lo) as f64 <= v as f64 / 16.0 + 1.0, "v={v} width {}", hi - lo);
            }
        }
    }

    #[test]
    fn quantile_within_one_bucket_width() {
        let mut h = LogHistogram::new();
        let mut samples: Vec<u64> = (0..500u64).map(|i| i * i * 7 % 100_000).collect();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        for q in [0.5, 0.9, 0.99, 1.0] {
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let exact = samples[rank - 1];
            let (lo, hi) = LogHistogram::bucket_bounds_of(exact);
            let got = h.quantile(q);
            assert!(
                got.abs_diff(exact) <= hi - lo,
                "q={q}: got {got}, exact {exact}, bucket [{lo},{hi}]"
            );
        }
    }

    #[test]
    fn merge_equals_concat() {
        let (mut a, mut b, mut all) =
            (LogHistogram::new(), LogHistogram::new(), LogHistogram::new());
        for v in [3u64, 99, 1_000_000, 17] {
            a.record(v);
            all.record(v);
        }
        for v in [4u64, 99, 123_456_789] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn section_counters_add_and_peaks_max() {
        let mut s = Section::default();
        s.counter("a", 2);
        s.counter("a", 3);
        s.counter_max("peak", 7);
        s.counter_max("peak", 4);
        assert_eq!(s.get_counter("a"), Some(5));
        assert_eq!(s.get_counter("peak"), Some(7));
    }

    #[derive(Default)]
    struct DemoStats {
        hits: u64,
        peak: u64,
    }
    observe_counters!(DemoStats { hits } max { peak });

    #[test]
    fn observe_macro_and_snapshot_flatten() {
        let mut snap = Snapshot::new();
        let a = DemoStats { hits: 3, peak: 9 };
        let b = DemoStats { hits: 4, peak: 5 };
        snap.root.observe("demo", &a);
        snap.root.observe("demo", &b);
        assert_eq!(snap.get("demo.hits"), Some(7.0));
        assert_eq!(snap.get("demo.peak"), Some(9.0));
        let mut h = LogHistogram::new();
        h.record_duration(SimDuration::from_secs(2));
        snap.root.child("lat").histogram("latency_us", &h);
        assert_eq!(snap.get("lat.latency_us.count"), Some(1.0));
        assert!(snap.render().contains("demo.hits = 7"));
    }

    #[test]
    fn snapshot_merge_adds() {
        let mut a = Snapshot::new();
        let mut b = Snapshot::new();
        a.root.child("x").counter("n", 1);
        b.root.child("x").counter("n", 2);
        a.merge(&b);
        assert_eq!(a.get("x.n"), Some(3.0));
    }
}
