//! Per-query trace spans and the anomalous-outcome flight recorder.
//!
//! Every query, identified by its ticket, accumulates a time-stamped
//! event log: submit → cache hit/miss → coalesce → per-RPC
//! attempt/retransmit/defer → shed/forward/re-home → exactly one
//! terminal event carrying the completion cause, `answer_age`, and
//! sigma. Two tracers cooperate:
//!
//! * the **pipeline tracer** (one per proxy) records the radio-level
//!   life of a pipeline ticket — fast paths, coalescing, per-RPC
//!   attempts from the downlink channel's attempt log;
//! * the **router tracer** (one per fleet) records the deployment-level
//!   life of a fleet ticket — admission, shedding, forwarding,
//!   re-homing, fencing, and the terminal verdict. The deployment
//!   splices each finished pipeline trace into its fleet trace (minus
//!   the pipeline's own terminal event) before the router closes it.
//!
//! Finished traces with a non-`Ok` cause are retained whole in a
//! bounded [`FlightRecorder`] for post-mortem dumps; everything else
//! drains through a bounded FIFO the harness reads each epoch. All of
//! it is free when disabled: a tracer built with `enabled = false`
//! never allocates or records.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use presto_sim::{SimDuration, SimTime};

/// Why a query terminated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompletionCause {
    /// Completed with a real answer.
    Ok,
    /// Honest failure (deadline expiry, dead entry proxy, unreachable
    /// sensor, late drop).
    Failed,
    /// Rejected by a self-fenced minority proxy during a partition.
    FailedFenced,
}

/// One step in a query's life.
#[derive(Clone, Debug, PartialEq)]
pub enum SpanEvent {
    /// The query entered the system.
    Submitted,
    /// Served without radio work; `path` names the fast path
    /// (`"fast"`, `"reply_cache"`).
    CacheHit {
        /// Which radio-free path served it.
        path: &'static str,
    },
    /// Missed every radio-free path and enqueued for a pull.
    CacheMiss,
    /// Attached to an RPC another query already had in flight.
    Coalesced,
    /// A new pull RPC was issued for this query's need.
    RpcIssued,
    /// First transmission of the RPC.
    RpcAttempt,
    /// A timeout-scheduled retransmission.
    RpcRetransmit,
    /// An attempt deferred by the retry energy budget.
    RpcDeferred,
    /// The RPC expired without a reply.
    RpcExpired,
    /// Shed from a hot home proxy to a cool peer.
    Shed {
        /// Home proxy.
        from: usize,
        /// Adopting proxy.
        to: usize,
    },
    /// Forwarded over the inter-proxy mesh.
    Forwarded {
        /// Sender.
        from: usize,
        /// Adopter.
        to: usize,
    },
    /// Re-homed to a survivor after the serving proxy died.
    Rerouted {
        /// The new serving proxy.
        to: usize,
    },
    /// Rejected at admission by a self-fenced proxy.
    FencedReject,
    /// Rejected at admission: the home proxy was down.
    Unreachable,
    /// The pipeline-level completion verdict, spliced into fleet traces
    /// in place of the pipeline's terminal event.
    PipelineDone {
        /// The pipeline's verdict.
        cause: CompletionCause,
    },
    /// The query's one terminal event.
    Terminal {
        /// The verdict.
        cause: CompletionCause,
        /// Serve-time staleness of the answer (`None` for answers
        /// carrying no data).
        answer_age: Option<SimDuration>,
        /// The answer's reported confidence width.
        sigma: f64,
    },
}

impl SpanEvent {
    /// True for the terminal variant.
    pub fn is_terminal(&self) -> bool {
        matches!(self, SpanEvent::Terminal { .. })
    }
}

/// A time-stamped [`SpanEvent`].
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// When it happened.
    pub at: SimTime,
    /// What happened.
    pub event: SpanEvent,
}

/// A finished query's full event log, sorted by time (stably, so
/// same-instant events keep recording order).
#[derive(Clone, Debug, PartialEq)]
pub struct QueryTrace {
    /// The query ticket.
    pub ticket: u64,
    /// The events, time-sorted, ending in exactly one terminal.
    pub events: Vec<TraceEvent>,
}

impl QueryTrace {
    /// The terminal event, if the trace closed properly.
    pub fn terminal(&self) -> Option<&TraceEvent> {
        self.events.iter().find(|e| e.event.is_terminal())
    }

    /// The completion cause.
    pub fn cause(&self) -> Option<CompletionCause> {
        self.terminal().and_then(|e| match e.event {
            SpanEvent::Terminal { cause, .. } => Some(cause),
            _ => None,
        })
    }

    /// The terminal's answer age: `Some` exactly when the completion
    /// carried data (the Ok set — failed terminals reflect nothing and
    /// have nothing to be stale about). `None` also when the trace
    /// never closed.
    pub fn answer_age(&self) -> Option<SimDuration> {
        self.terminal().and_then(|e| match e.event {
            SpanEvent::Terminal { answer_age, .. } => answer_age,
            _ => None,
        })
    }

    /// Number of terminal events (well-formed traces have exactly one).
    pub fn terminal_count(&self) -> usize {
        self.events.iter().filter(|e| e.event.is_terminal()).count()
    }

    /// True when event timestamps never decrease.
    pub fn is_monotone(&self) -> bool {
        self.events.windows(2).all(|w| w[0].at <= w[1].at)
    }
}

/// Bounded retention of full traces for anomalous outcomes (honest
/// failures, fenced rejections) — the post-mortem record scenario bins
/// and tests dump when an assertion trips.
#[derive(Clone, Debug, Default)]
pub struct FlightRecorder {
    traces: VecDeque<QueryTrace>,
    cap: usize,
    /// Traces evicted by the bound (visible so a smoke can tell
    /// "recorder empty" from "recorder overflowed").
    dropped: u64,
}

impl FlightRecorder {
    /// Creates a recorder bounded to `cap` traces.
    pub fn new(cap: usize) -> Self {
        FlightRecorder {
            traces: VecDeque::new(),
            cap,
            dropped: 0,
        }
    }

    /// Retains a trace, evicting the oldest beyond capacity.
    pub fn retain(&mut self, trace: QueryTrace) {
        self.traces.push_back(trace);
        while self.traces.len() > self.cap {
            self.traces.pop_front();
            self.dropped += 1;
        }
    }

    /// All retained traces, oldest first.
    pub fn traces(&self) -> impl Iterator<Item = &QueryTrace> {
        self.traces.iter()
    }

    /// The retained trace for one ticket.
    pub fn find(&self, ticket: u64) -> Option<&QueryTrace> {
        self.traces.iter().find(|t| t.ticket == ticket)
    }

    /// Retained trace count.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Traces evicted by the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Default bound on finished traces awaiting collection.
pub const FINISHED_CAP: usize = 4096;
/// Default flight-recorder bound.
pub const RECORDER_CAP: usize = 4096;

/// The per-tier trace collector: open event logs keyed by ticket, a
/// bounded FIFO of finished traces for the harness to drain, and the
/// flight recorder for anomalous outcomes.
#[derive(Clone, Debug)]
pub struct QueryTracer {
    enabled: bool,
    open: BTreeMap<u64, Vec<TraceEvent>>,
    finished: VecDeque<QueryTrace>,
    finished_cap: usize,
    /// Finished traces evicted before collection.
    finished_dropped: u64,
    recorder: FlightRecorder,
}

impl QueryTracer {
    /// Creates a tracer with the default caps; when `enabled` is false
    /// every method is a no-op and nothing ever allocates.
    pub fn new(enabled: bool) -> Self {
        Self::with_caps(enabled, FINISHED_CAP, RECORDER_CAP)
    }

    /// Creates a tracer with explicit bounds on the finished-trace FIFO
    /// and the flight recorder. Evictions beyond either bound are
    /// counted ([`QueryTracer::finished_dropped`],
    /// [`FlightRecorder::dropped`]) rather than silent.
    pub fn with_caps(enabled: bool, finished_cap: usize, recorder_cap: usize) -> Self {
        QueryTracer {
            enabled,
            open: BTreeMap::new(),
            finished: VecDeque::new(),
            finished_cap,
            finished_dropped: 0,
            recorder: FlightRecorder::new(recorder_cap),
        }
    }

    /// Whether tracing is on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event against `ticket`, opening its log on first use.
    pub fn record(&mut self, ticket: u64, at: SimTime, event: SpanEvent) {
        if !self.enabled {
            return;
        }
        self.open
            .entry(ticket)
            .or_default()
            .push(TraceEvent { at, event });
    }

    /// Splices externally collected events (a finished pipeline trace)
    /// into `ticket`'s open log. Terminal events are demoted to
    /// [`SpanEvent::PipelineDone`] so the merged trace still has exactly
    /// one terminal — the one this tracer's [`QueryTracer::finish`]
    /// appends. Unknown tickets are ignored (the fleet-level trace was
    /// disabled or already closed).
    pub fn absorb(&mut self, ticket: u64, events: Vec<TraceEvent>) {
        if !self.enabled {
            return;
        }
        let Some(log) = self.open.get_mut(&ticket) else {
            return;
        };
        log.extend(events.into_iter().map(|e| match e.event {
            SpanEvent::Terminal { cause, .. } => TraceEvent {
                at: e.at,
                event: SpanEvent::PipelineDone { cause },
            },
            _ => e,
        }));
    }

    /// Closes `ticket`'s trace with its terminal event, stably
    /// time-sorts the log, retains it in the flight recorder when the
    /// cause is anomalous, and queues it for collection.
    pub fn finish(
        &mut self,
        ticket: u64,
        at: SimTime,
        cause: CompletionCause,
        answer_age: Option<SimDuration>,
        sigma: f64,
    ) {
        if !self.enabled {
            return;
        }
        let mut events = self.open.remove(&ticket).unwrap_or_default();
        events.push(TraceEvent {
            at,
            event: SpanEvent::Terminal {
                cause,
                answer_age,
                sigma,
            },
        });
        events.sort_by_key(|e| e.at);
        let trace = QueryTrace { ticket, events };
        if cause != CompletionCause::Ok {
            self.recorder.retain(trace.clone());
        }
        self.finished.push_back(trace);
        while self.finished.len() > self.finished_cap {
            self.finished.pop_front();
            self.finished_dropped += 1;
        }
    }

    /// Drains every finished trace recorded since the last call.
    pub fn take_finished(&mut self) -> Vec<QueryTrace> {
        self.finished.drain(..).collect()
    }

    /// Open (un-terminated) logs — the orphan probe: zero after a full
    /// drain.
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Drops every open log (proxy crash: RAM-resident trace state dies
    /// with the pipeline queue; the fleet tier still closes its own
    /// trace honestly).
    pub fn clear_open(&mut self) {
        self.open.clear();
    }

    /// Finished traces evicted before collection.
    pub fn finished_dropped(&self) -> u64 {
        self.finished_dropped
    }

    /// The anomalous-outcome recorder.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut tr = QueryTracer::new(false);
        tr.record(1, t(0), SpanEvent::Submitted);
        tr.finish(1, t(1), CompletionCause::Failed, None, f64::INFINITY);
        assert_eq!(tr.open_count(), 0);
        assert!(tr.take_finished().is_empty());
        assert!(tr.recorder().is_empty());
    }

    #[test]
    fn trace_closes_with_one_terminal_and_sorts() {
        let mut tr = QueryTracer::new(true);
        tr.record(7, t(5), SpanEvent::CacheMiss);
        tr.record(7, t(1), SpanEvent::Submitted);
        tr.finish(7, t(9), CompletionCause::Ok, Some(SimDuration::from_secs(2)), 0.1);
        let done = tr.take_finished();
        assert_eq!(done.len(), 1);
        let trace = &done[0];
        assert!(trace.is_monotone());
        assert_eq!(trace.terminal_count(), 1);
        assert_eq!(trace.cause(), Some(CompletionCause::Ok));
        assert_eq!(trace.events[0].event, SpanEvent::Submitted);
        assert_eq!(tr.open_count(), 0);
        assert!(tr.recorder().is_empty(), "Ok outcomes are not retained");
    }

    #[test]
    fn failed_outcomes_reach_the_recorder() {
        let mut tr = QueryTracer::new(true);
        tr.record(3, t(0), SpanEvent::Submitted);
        tr.record(3, t(0), SpanEvent::FencedReject);
        tr.finish(3, t(0), CompletionCause::FailedFenced, None, f64::INFINITY);
        let rec = tr.recorder().find(3).expect("retained");
        assert_eq!(rec.cause(), Some(CompletionCause::FailedFenced));
        assert_eq!(
            rec.events[1].event,
            SpanEvent::FencedReject,
            "cause chain preserved in order"
        );
    }

    #[test]
    fn absorb_demotes_inner_terminal() {
        let mut tr = QueryTracer::new(true);
        tr.record(1, t(0), SpanEvent::Submitted);
        tr.absorb(
            1,
            vec![
                TraceEvent { at: t(2), event: SpanEvent::RpcIssued },
                TraceEvent {
                    at: t(4),
                    event: SpanEvent::Terminal {
                        cause: CompletionCause::Ok,
                        answer_age: None,
                        sigma: 0.0,
                    },
                },
            ],
        );
        tr.finish(1, t(4), CompletionCause::Ok, None, 0.0);
        let done = tr.take_finished().remove(0);
        assert_eq!(done.terminal_count(), 1, "absorbed terminal demoted");
        assert!(done
            .events
            .iter()
            .any(|e| e.event == SpanEvent::PipelineDone { cause: CompletionCause::Ok }));
    }

    #[test]
    fn recorder_bounds_and_counts_drops() {
        let mut rec = FlightRecorder::new(2);
        for i in 0..3 {
            rec.retain(QueryTrace { ticket: i, events: Vec::new() });
        }
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.dropped(), 1);
        assert!(rec.find(0).is_none(), "oldest evicted");
        assert!(rec.find(2).is_some());
    }

    #[test]
    fn configured_caps_bound_both_queues_and_count_evictions() {
        // Tiny caps so both eviction paths trip: 2 finished, 1 recorded.
        let mut tr = QueryTracer::with_caps(true, 2, 1);
        for i in 0..4u64 {
            tr.record(i, t(i), SpanEvent::Submitted);
            tr.finish(i, t(i + 1), CompletionCause::Failed, None, f64::INFINITY);
        }
        // Finished FIFO: 4 closed, cap 2 → 2 dropped, newest retained.
        assert_eq!(tr.finished_dropped(), 2);
        let kept: Vec<u64> = tr.take_finished().iter().map(|q| q.ticket).collect();
        assert_eq!(kept, vec![2, 3]);
        // Recorder: every Failed trace was offered, cap 1 → 3 dropped,
        // and the drop count is exported rather than silent.
        assert_eq!(tr.recorder().len(), 1);
        assert_eq!(tr.recorder().dropped(), 3);
        assert!(tr.recorder().find(3).is_some(), "newest survives");
        assert!(tr.recorder().find(0).is_none(), "oldest evicted");
    }

    #[test]
    fn clear_open_drops_orphans() {
        let mut tr = QueryTracer::new(true);
        tr.record(1, t(0), SpanEvent::Submitted);
        assert_eq!(tr.open_count(), 1);
        tr.clear_open();
        assert_eq!(tr.open_count(), 0);
    }
}
