//! Fleet-wide observability for the PRESTO reproduction.
//!
//! The paper's whole argument is an economics claim — answer queries
//! within tolerance while spending bounded sensor energy and radio —
//! so the evidence has to be collectable in one place. This crate is
//! that place, three zero-dependency primitives threaded through every
//! tier:
//!
//! * [`metrics`] — counters, gauges, and mergeable log-linear-bucket
//!   histograms (p50/p90/p99/max) assembled into a [`Snapshot`] tree.
//!   Every existing `*Stats` struct reports into the tree through the
//!   [`Observe`] trait instead of thirteen ad-hoc accessors.
//! * [`trace`] — per-query trace spans: a lightweight event log keyed
//!   by query ticket (submit → cache hit/miss → coalesce → per-RPC
//!   attempt/retransmit/defer → shed/forward/re-home → completion
//!   cause with `answer_age` and sigma), plus a bounded
//!   [`FlightRecorder`] that retains full traces for anomalous
//!   outcomes for post-mortem dumps.
//! * [`profiler`] — phase timers and per-epoch attempt counts over the
//!   epoch pump (`step_epoch_core`, `pump_pipelines`, `pump_queries`,
//!   membership step), so hot-path regressions are visible before the
//!   scale-harness PR.
//!
//! Instrumentation is cheap when enabled and free when disabled: every
//! recorder carries an `enabled` flag checked before any allocation or
//! clock read, pinned by the `telemetry_guard` criterion bench.

pub mod alloc;
pub mod metrics;
pub mod profiler;
pub mod scope;
pub mod trace;

pub use metrics::{LogHistogram, Observe, Section, Snapshot};
pub use profiler::{EpochProfiler, PhaseStat, PhaseToken};
pub use scope::{
    Incident, PrestoScope, RingSeries, RuleCheck, ScopeConfig, SeriesBin, SeriesKind, SeriesSpec,
    TimeSeriesSampler, WatchdogEngine, WatchdogRule,
};
pub use trace::{
    CompletionCause, FlightRecorder, QueryTrace, QueryTracer, SpanEvent, TraceEvent,
};
