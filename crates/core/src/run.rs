//! The PRESTO arm of the architecture comparison (Table 1).
//!
//! Matches [`presto_baselines::driver`] exactly: same workload, same
//! query stream, same report row — but the answer path is PRESTO's
//! cache → extrapolation → pull with model-driven push underneath.

use presto_baselines::driver::{build, ArchReport, DriverConfig, ReportBuilder};
use presto_proxy::{PrestoProxy, ProxyConfig};
use presto_sensor::PushPolicy;
use presto_sim::{SimDuration, SimTime};
use presto_workloads::{QueryTarget, TimeScope};

/// Runs PRESTO on the shared comparison workload.
pub fn run_presto(cfg: &DriverConfig) -> ArchReport {
    let lpl = SimDuration::from_secs(1);
    let push_tolerance = 1.0;
    let mut dep = build(
        cfg,
        PushPolicy::ModelDriven {
            tolerance: push_tolerance,
        },
        lpl,
    );
    let mut proxy = PrestoProxy::new(ProxyConfig {
        push_tolerance,
        sensor_lpl: lpl,
        ..ProxyConfig::default()
    });
    for i in 0..cfg.sensors {
        proxy.register_sensor(crate::gid16(i));
    }

    let mut rb = ReportBuilder::default();
    let epochs = SimDuration::from_days(cfg.days).div_duration(dep.epoch);
    let mut qi = 0usize;
    let mut truth_now = vec![0.0f64; cfg.sensors];
    let train_every = SimDuration::from_hours(1).div_duration(dep.epoch).max(1);

    for e in 0..epochs {
        let t = SimTime::ZERO + dep.epoch * e;
        let readings = dep.lab.step();
        for (s, r) in readings.iter().enumerate() {
            truth_now[s] = r.value;
            for msg in dep.nodes[s].on_sample(r.timestamp, r.value, None) {
                proxy.on_uplink(&msg);
            }
        }
        if e % train_every == 0 {
            for s in 0..cfg.sensors {
                proxy.maybe_train_and_push(t, crate::gid16(s), &mut dep.nodes[s], &mut dep.downlinks[s]);
            }
        }
        while qi < dep.queries.len() && dep.queries[qi].arrival <= t + dep.epoch {
            let q = dep.queries[qi];
            qi += 1;
            let sensor = match q.target {
                QueryTarget::Sensor(s) => crate::gid16(s.min(cfg.sensors - 1)),
                QueryTarget::ProxyGroup(_) => 0,
            };
            match q.scope {
                TimeScope::Now => {
                    let a = proxy.answer_now(
                        q.arrival,
                        sensor,
                        q.tolerance,
                        &mut dep.nodes[sensor as usize],
                        &mut dep.downlinks[sensor as usize],
                    );
                    rb.now_latency_ms.record(a.latency.as_millis_f64());
                    rb.now_error
                        .record((a.value - truth_now[sensor as usize]).abs());
                }
                TimeScope::Past { from, to } => {
                    rb.past_total += 1;
                    let a = proxy.answer_past(
                        q.arrival,
                        sensor,
                        from,
                        to,
                        q.tolerance,
                        &mut dep.nodes[sensor as usize],
                        &mut dep.downlinks[sensor as usize],
                    );
                    if !a.samples.is_empty() {
                        rb.past_answered += 1;
                    }
                }
            }
        }
    }
    let end = SimTime::ZERO + dep.epoch * epochs;
    for n in &mut dep.nodes {
        n.advance_to(end);
    }
    rb.finish("PRESTO", &dep.nodes, cfg.days, true, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_baselines::{direct, stream, valuepush};

    fn quick_cfg() -> DriverConfig {
        DriverConfig {
            sensors: 3,
            days: 2,
            ..DriverConfig::default()
        }
    }

    #[test]
    fn presto_beats_streaming_on_energy() {
        // Three days so the no-model warm-up phase (during which every
        // sample is pushed) amortizes out.
        let cfg = DriverConfig {
            days: 3,
            ..quick_cfg()
        };
        let p = run_presto(&cfg);
        let s = stream::run(&cfg, true);
        assert!(
            p.radio_energy_per_day_j < s.radio_energy_per_day_j / 2.5,
            "PRESTO {} vs streaming {}",
            p.radio_energy_per_day_j,
            s.radio_energy_per_day_j
        );
    }

    #[test]
    fn presto_beats_direct_on_latency() {
        let p = run_presto(&quick_cfg());
        let d = direct::run(&quick_cfg());
        assert!(
            p.now_latency_mean_ms < d.now_latency_mean_ms / 5.0,
            "PRESTO {} vs direct {}",
            p.now_latency_mean_ms,
            d.now_latency_mean_ms
        );
    }

    #[test]
    fn presto_supports_past_queries_unlike_value_push() {
        let p = run_presto(&quick_cfg());
        let v = valuepush::run(&quick_cfg(), 1.0);
        assert!(p.supports_past && !v.supports_past);
        assert!(
            p.past_answered_fraction > 0.8,
            "{}",
            p.past_answered_fraction
        );
        assert!(p.uses_prediction);
    }

    #[test]
    fn presto_answers_are_within_tolerance_regime() {
        let p = run_presto(&quick_cfg());
        // Mean NOW error bounded by roughly the push tolerance.
        assert!(p.now_error_mean < 1.3, "{}", p.now_error_mean);
    }
}
