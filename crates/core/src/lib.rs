//! PRESTO core: the paper's architecture, assembled.
//!
//! This crate wires the substrates into the three-tier system of
//! Figure 1 and exposes the **unified logical store** the user tier
//! queries:
//!
//! * [`system::PrestoSystem`] — N proxies × M sensors each, a shared
//!   Intel-Lab-style workload, model-driven push, periodic model
//!   training/pushes, semantic event reporting, and clock beacons; all
//!   energy metered per node.
//! * [`store::UnifiedStore`] — the "single logical view of data": routes
//!   each query through the Skip Graph index to the responsible proxy,
//!   which answers via cache → extrapolation → pull; PAST answers can
//!   reach all the way into mote archives.
//! * [`run`] — the PRESTO arm of the Table 1 comparison, matched to the
//!   baselines' [`presto_baselines::driver`] so rows are comparable.

pub mod run;
pub mod store;
pub mod system;

/// Converts a global sensor index to its `u16` wire id.
///
/// Sensor ids travel the radio as `u16`; [`system::PrestoSystem::new`]
/// asserts at construction that the sensor space fits, so this cast can
/// never truncate in a constructed system. Keep every index→wire-id
/// conversion behind this helper instead of scattering raw `as u16` casts.
pub fn gid16(gid: usize) -> u16 {
    debug_assert!(gid <= u16::MAX as usize, "sensor id {gid} exceeds u16 wire id space");
    // presto-lint: allow(narrow, sensor space asserted <= u16::MAX at PrestoSystem construction)
    gid as u16
}

pub use presto_proxy::{CompletedQuery, PipelineAnswer, PipelineQuery, PipelineStats};
pub use run::run_presto;
pub use store::{StoreQuery, StoreResponse, UnifiedStore};
pub use system::{PrestoSystem, SystemConfig, SystemReport};
