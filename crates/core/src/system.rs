//! The three-tier PRESTO system.
//!
//! Since the reliability rework, no message between a sensor and a
//! proxy crosses by direct call, in either direction. Everything a
//! sensor emits — deviation pushes, batches, event reports, heartbeats,
//! segment-seal notifications — rides the [`Fabric`], a lossy, delayed,
//! sequence-numbered channel with ack/retransmit and an energy-charged
//! retry budget. Everything a proxy initiates — archive pulls,
//! aggregate requests, model pushes, retunes, recovery replays — rides
//! a per-sensor [`presto_reliability::DownlinkChannel`] with the same
//! machinery pointed the other way (sequenced requests, sensor-side
//! dedup, proxy-billed retry budget, a pending-RPC table matching
//! replies to outstanding query ids), gated by the fault plan. When
//! [`ReliabilityConfig::shared_fading`] is set, every channel near one
//! proxy samples a common [`SharedLossState`], so bursts hit the whole
//! neighbourhood at once instead of averaging out per sensor. A
//! proxy-side [`LivenessMonitor`] grades each sensor Live/Suspect/Dead
//! from heartbeat leases, and a [`GapTracker`] turns sequence gaps and
//! reconnects into archive-backed recovery replays.

use presto_index::{ClockCorrector, DriftClock, SkipGraph, TimeRangeIndex};
use presto_net::{LinkModel, LossProcess, SharedLossState};
use presto_proxy::{
    CompletedQuery, PipelineQuery, PipelineStats, PrestoProxy, ProxyConfig, SliceCacheStats,
};
use presto_reliability::{
    recovery::padded_span, DownlinkChannel, DownlinkStats, Fabric, FabricStats, GapTracker,
    Health, LivenessMonitor, Observation, RecoveryStats, ReliabilityConfig,
};
use presto_sensor::{PushPolicy, SensorConfig, SensorNode};
use presto_sim::{EnergyCategory, EnergyLedger, FaultPlan, SimDuration, SimRng, SimTime};
use presto_telemetry::{EpochProfiler, PrestoScope, ScopeConfig, Snapshot};
use presto_workloads::{LabDeployment, LabParams};

/// Event type code used for rare-event reports.
pub const RARE_EVENT_TYPE: u16 = 1;

/// System construction parameters.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Number of proxies.
    pub proxies: usize,
    /// Sensors per proxy.
    pub sensors_per_proxy: usize,
    /// Master seed.
    pub seed: u64,
    /// Workload parameters (per proxy's deployment).
    pub lab: LabParams,
    /// Frame loss on sensor links.
    pub loss: f64,
    /// Sensor push tolerance (model-driven push threshold).
    pub push_tolerance: f64,
    /// LPL check interval for sensors.
    pub lpl: SimDuration,
    /// How often proxies consider retraining models.
    pub train_check_every: SimDuration,
    /// Sensor clock skew spread (ppm); zero disables drift simulation.
    pub clock_skew_ppm: f64,
    /// Proxy configuration template.
    pub proxy: ProxyConfig,
    /// Message fabric, liveness, and recovery parameters.
    pub reliability: ReliabilityConfig,
    /// Injected crash/reboot and blackout schedule.
    pub faults: FaultPlan,
    /// Profile the epoch pump's phases (wall-clock timers and work
    /// counts). On by default — the timers cost one `Instant` read per
    /// phase; disabled, the profiler never touches the clock.
    pub profile: bool,
    /// `presto-scope` time-series sampling and SLO watchdogs over the
    /// telemetry snapshot, ticked once per epoch. Disabled by default:
    /// an enabled scope builds a snapshot every sampled epoch.
    pub scope: ScopeConfig,
}

impl Default for SystemConfig {
    fn default() -> Self {
        let lpl = SimDuration::from_secs(1);
        SystemConfig {
            proxies: 2,
            sensors_per_proxy: 4,
            seed: 7,
            lab: LabParams::default(),
            loss: 0.02,
            push_tolerance: 1.0,
            lpl,
            train_check_every: SimDuration::from_hours(1),
            clock_skew_ppm: 0.0,
            proxy: ProxyConfig {
                sensor_lpl: lpl,
                ..ProxyConfig::default()
            },
            reliability: ReliabilityConfig::default(),
            faults: FaultPlan::none(),
            profile: true,
            scope: ScopeConfig::default(),
        }
    }
}

/// Aggregate report over the deployment.
#[derive(Clone, Debug, Default)]
pub struct SystemReport {
    /// Mean sensor energy per day, joules.
    pub sensor_energy_per_day_j: f64,
    /// Total proxy energy, joules.
    pub proxy_energy_j: f64,
    /// Total uplink messages received across proxies.
    pub uplinks: u64,
    /// Models pushed.
    pub models_pushed: u64,
    /// Events cached across proxies.
    pub events: u64,
    /// Fabric retransmission attempts.
    pub retransmits: u64,
    /// Messages the fabric abandoned (retry count or budget exhausted).
    pub messages_dropped: u64,
    /// Sequence gaps detected at proxies.
    pub gaps_detected: u64,
    /// Archive-backed recovery replays completed.
    pub recoveries: u64,
    /// Heartbeats transmitted across sensors.
    pub heartbeats: u64,
}

/// A running three-tier deployment.
pub struct PrestoSystem {
    config: SystemConfig,
    /// One proxy per cluster.
    pub proxies: Vec<PrestoProxy>,
    /// `nodes[p][s]`: sensor `s` of proxy `p`.
    pub nodes: Vec<Vec<SensorNode>>,
    /// Per-sensor downlink channels, same shape: every proxy→sensor
    /// message rides one of these.
    pub downlinks: Vec<Vec<DownlinkChannel>>,
    /// Per-proxy workload generators.
    labs: Vec<LabDeployment>,
    /// Order-preserving index over global sensor-id space: key = first
    /// global id owned by a proxy.
    pub index: SkipGraph<u64>,
    /// Archived `[start, end]` intervals per proxy, registered from the
    /// sensors' sealed segments so range queries can prune proxies with
    /// no overlapping data.
    pub time_index: TimeRangeIndex,
    /// Per-sensor drifting clocks and their correctors (flat global ids).
    pub clocks: Vec<DriftClock>,
    /// Correctors, same order.
    pub correctors: Vec<ClockCorrector>,
    /// Last true value per global sensor id.
    pub truth: Vec<f64>,
    /// The message fabric every sensor→proxy message rides.
    pub fabric: Fabric,
    /// Proxy-side liveness leases over all sensors (flat global ids).
    pub liveness: LivenessMonitor,
    /// Sequence-gap tracking and recovery queue (flat global ids).
    pub gaps: GapTracker,
    /// One shared fading state per proxy when correlated loss is on:
    /// every channel of that proxy's sensors samples it.
    shared_loss: Vec<SharedLossState>,
    /// Whether a rare event was active last epoch (for onset detection).
    event_was_active: Vec<bool>,
    /// Whether each sensor was crashed at the last fault-gate pass
    /// (crash-onset edge detection).
    was_down: Vec<bool>,
    /// Current serving proxy per sensor (flat global ids). Starts at
    /// the physical placement ([`PrestoSystem::locate`]) and changes
    /// when the deployment tier re-homes a sensor after its proxy dies.
    assignment: Vec<usize>,
    /// Whether each proxy was down at the last fault-gate pass
    /// (crash-onset edge detection: RAM-resident query state dies).
    proxy_was_down: Vec<bool>,
    epoch_index: u64,
    last_train_check: SimTime,
    last_beacon: SimTime,
    /// Epoch start of the previous fault-gate evaluation (reboot edge
    /// detection).
    last_fault_check: SimTime,
    /// Phase timers over the epoch pump.
    profiler: EpochProfiler,
    /// Time-series sampler + SLO watchdogs over the snapshot tree.
    scope: PrestoScope,
}

impl PrestoSystem {
    /// Builds the deployment.
    pub fn new(config: SystemConfig) -> Self {
        let total = config.proxies * config.sensors_per_proxy;
        assert!(
            total <= u16::MAX as usize,
            "sensor space {total} exceeds the u16 wire id space"
        );
        let rng = SimRng::new(config.seed);
        let mut proxies = Vec::with_capacity(config.proxies);
        let mut nodes = Vec::with_capacity(config.proxies);
        let mut downlinks = Vec::with_capacity(config.proxies);
        let mut labs = Vec::with_capacity(config.proxies);
        let mut index = SkipGraph::new(config.seed ^ 0xD15C);

        // One shared fading state per proxy when correlated loss is on:
        // its chain transitions are driven once per epoch by the system,
        // and every channel of the proxy's sensors holds a clone.
        let shared_loss: Vec<SharedLossState> = match config.reliability.shared_fading {
            Some(chain) => (0..config.proxies)
                .map(|p| SharedLossState::new(chain, rng.split(&format!("shared-fade-{p}"))))
                .collect(),
            None => Vec::new(),
        };
        let correlated = |p: usize| -> Option<LossProcess> {
            shared_loss
                .get(p)
                .map(|s| LossProcess::Correlated(s.clone()))
        };

        for p in 0..config.proxies {
            let mut proxy = PrestoProxy::new(ProxyConfig {
                id: p,
                push_tolerance: config.push_tolerance,
                sensor_lpl: config.lpl,
                ..config.proxy.clone()
            });
            let mut cluster = Vec::with_capacity(config.sensors_per_proxy);
            let mut links = Vec::with_capacity(config.sensors_per_proxy);
            for s in 0..config.sensors_per_proxy {
                let gid = crate::gid16(p * config.sensors_per_proxy + s);
                proxy.register_sensor(gid);
                let cfg = SensorConfig {
                    push: PushPolicy::ModelDriven {
                        tolerance: config.push_tolerance,
                    },
                    duty: presto_net::DutyCycle::lpl(config.lpl),
                    announce_seals: true,
                    ..SensorConfig::default()
                };
                let mk_link = |label: String| {
                    if config.loss > 0.0 {
                        LinkModel::new(LossProcess::Bernoulli(config.loss), rng.split(&label))
                    } else {
                        LinkModel::perfect()
                    }
                };
                cluster.push(SensorNode::new(gid, cfg, mk_link(format!("up-{gid}"))));
                // The downlink channel wraps the first-hop link; its
                // end-to-end loss streams come from the reliability
                // config, replaced by the proxy's shared fading state
                // when correlated loss is on.
                let mut dl_cfg = config.reliability.downlink.clone();
                dl_cfg.seed ^= (config.seed.rotate_left(17)).wrapping_add(gid as u64 * 0x9E37);
                if let Some(shared) = correlated(p) {
                    dl_cfg.request_loss = shared.clone();
                    dl_cfg.reply_loss = shared;
                }
                links.push(DownlinkChannel::new(dl_cfg, mk_link(format!("down-{gid}"))));
            }
            index.insert((p * config.sensors_per_proxy) as u64);
            proxies.push(proxy);
            nodes.push(cluster);
            downlinks.push(links);
            labs.push(LabDeployment::new(
                LabParams {
                    sensors: config.sensors_per_proxy,
                    ..config.lab.clone()
                },
                config.seed.wrapping_add(p as u64 * 101),
            ));
        }

        let mut clock_rng = rng.split("clocks");
        let clocks: Vec<DriftClock> = (0..total)
            .map(|_| {
                if config.clock_skew_ppm > 0.0 {
                    DriftClock {
                        offset_s: clock_rng.gaussian_ms(0.0, 1.0),
                        skew_ppm: clock_rng.gaussian_ms(0.0, config.clock_skew_ppm),
                    }
                } else {
                    DriftClock::perfect()
                }
            })
            .collect();

        let time_index = TimeRangeIndex::new(config.seed ^ 0x71E5);
        // The fabric's loss streams derive from the master seed so two
        // systems with different seeds see different channel histories.
        let mut fabric_cfg = config.reliability.fabric.clone();
        fabric_cfg.seed ^= config.seed.rotate_left(13);
        let spp = config.sensors_per_proxy;
        let fabric = Fabric::new_with_losses(fabric_cfg, total, |gid| {
            correlated(gid / spp).map(|shared| (shared.clone(), shared))
        });
        let liveness = LivenessMonitor::new(config.reliability.liveness, total);
        PrestoSystem {
            proxies,
            nodes,
            downlinks,
            labs,
            index,
            time_index,
            clocks,
            correctors: (0..total).map(|_| ClockCorrector::new()).collect(),
            truth: vec![0.0; total],
            fabric,
            liveness,
            gaps: GapTracker::new(total),
            shared_loss,
            event_was_active: vec![false; total],
            was_down: vec![false; total],
            assignment: (0..total).map(|gid| gid / config.sensors_per_proxy).collect(),
            proxy_was_down: vec![false; config.proxies],
            epoch_index: 0,
            last_train_check: SimTime::ZERO,
            last_beacon: SimTime::ZERO,
            last_fault_check: SimTime::ZERO,
            profiler: EpochProfiler::new(config.profile),
            scope: PrestoScope::new(config.scope.clone()),
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Total sensors across the deployment.
    pub fn total_sensors(&self) -> usize {
        self.config.proxies * self.config.sensors_per_proxy
    }

    /// Maps a global sensor id to `(proxy index, local index)`.
    pub fn locate(&self, global: u16) -> (usize, usize) {
        let p = global as usize / self.config.sensors_per_proxy;
        let s = global as usize % self.config.sensors_per_proxy;
        (p.min(self.config.proxies - 1), s)
    }

    /// Routes a sensor id through the Skip Graph, returning the proxy
    /// index and the routing hop count (the index-lookup cost a
    /// distributed deployment would pay).
    pub fn route(&self, global: u16) -> (usize, u64) {
        // An empty index means nothing is registered yet: route to proxy 0
        // with zero hops rather than crashing the query path.
        let Some(intro) = self.index.introducer() else {
            return (0, 0);
        };
        let (owner_key, stats) = self.index.search(intro, global as u64);
        let key = owner_key.unwrap_or(0);
        ((key as usize) / self.config.sensors_per_proxy, stats.hops)
    }

    /// Current simulation time (start of the next epoch).
    pub fn now(&self) -> SimTime {
        SimTime::ZERO + self.config.lab.epoch * self.epoch_index
    }

    /// Advances the whole system by one sampling epoch (the core pass
    /// plus the default pipeline pump). Deployment-tier drivers that
    /// pump the pipelines themselves (the fleet router, with shedding
    /// and cross-proxy channels) call [`PrestoSystem::step_epoch_core`]
    /// and then their own pump instead.
    pub fn step_epoch(&mut self) {
        let t = self.step_epoch_core();
        self.pump_pipelines(t);
        self.scope_tick(t);
    }

    /// Advances everything except the query-pipeline pump by one epoch:
    /// fault gates, sampling, heartbeats, fabric retransmission and
    /// delivery, liveness, recovery, training, and clock beacons.
    /// Returns the epoch's start time — the instant a following pump
    /// pass should use.
    pub fn step_epoch_core(&mut self) -> SimTime {
        let timer = self.profiler.begin();
        let t = self.now();
        self.epoch_index += 1;
        // Everything offered this epoch that survives the channel is
        // consumed by the end of it (fabric delays are sub-epoch).
        let epoch_end = self.now();

        // 0. Proxy-tier fault gates: a proxy entering a blackout loses
        // its RAM-resident query state — pending pipeline queries,
        // uncollected answers, reply cache, per-sensor caches and model
        // replicas, and the pending-RPC tables of every channel it was
        // driving. Its sensors keep sampling into their archives; they
        // become reachable again when the deployment tier re-homes them
        // or the proxy reboots.
        for p in 0..self.config.proxies {
            let down = self.config.faults.proxy_down(p, t);
            if down && !self.proxy_was_down[p] {
                self.proxies[p].crash_reset();
                for gid in 0..self.total_sensors() {
                    if self.assignment[gid] == p {
                        let (hp, hs) = self.locate(crate::gid16(gid));
                        self.downlinks[hp][hs].reset_proxy_state();
                    }
                }
            }
            self.proxy_was_down[p] = down;
        }

        // 1. Fault gates: detect crash edges and set each sensor's
        // channel state — uplink fabric *and* downlink channel — for
        // this epoch. The shared fading state (when correlated loss is
        // on) advances one chain step per epoch, pinned bad during
        // injected burst windows.
        for shared in &self.shared_loss {
            shared.force(if self.config.faults.shared_burst_active(t) {
                Some(true)
            } else {
                None
            });
            shared.advance(1);
        }
        for gid in 0..self.total_sensors() {
            let (p, s) = self.locate(crate::gid16(gid));
            let down = self.config.faults.is_down(gid, t);
            if down && !self.was_down[gid] {
                // Crash onset: the unacked retransmission window lives
                // in the node's RAM — a powered-off node neither
                // retries nor pays for retries.
                self.fabric.clear_pending(gid);
            }
            if self.config.faults.rebooted_within(gid, self.last_fault_check, t) {
                // RAM state (model replica, pending batch, archive page
                // buffer) dies with the crash; the flash archive and
                // the sequence counter survive.
                self.nodes[p][s].reboot(t);
                self.fabric.clear_pending(gid);
            }
            self.was_down[gid] = down;
            // A sensor whose *serving proxy* is down has no working
            // head-end: its uplinks die in the channel (surfacing later
            // as gaps to repair) until the proxy reboots or the sensor
            // re-homes to a survivor.
            let reachable = !self.config.faults.is_unreachable(gid, t)
                && !self.config.faults.proxy_down(self.assignment[gid], t);
            self.fabric.set_link_up(gid, reachable);
            self.downlinks[p][s].set_link_up(reachable);
            // Downlink maintenance: refills the retransmission budget.
            self.downlinks[p][s].tick(t);
        }
        self.last_fault_check = t;

        // 2. Sampling. Crashed sensors sample nothing (their archives
        // gap too); everything an alive sensor emits enters the fabric.
        for p in 0..self.config.proxies {
            let readings = self.labs[p].step();
            for (s, r) in readings.iter().enumerate() {
                let gid = p * self.config.sensors_per_proxy + s;
                self.truth[gid] = r.value;
                if self.config.faults.is_down(gid, t) {
                    self.event_was_active[gid] = r.event_active;
                    continue;
                }
                // Sensors timestamp with their drifting local clocks.
                let local_t = self.clocks[gid].local_time(r.timestamp);
                let msgs = {
                    let node = &mut self.nodes[p][s];
                    node.on_sample(local_t, r.value, Some(proxy_ledger(&mut self.proxies[p])))
                };
                for msg in msgs {
                    self.fabric.offer(t, gid, msg);
                }
                // Rare-event onset → immediate semantic event report.
                if r.event_active && !self.event_was_active[gid] {
                    let ev = {
                        let node = &mut self.nodes[p][s];
                        node.on_event(
                            local_t,
                            RARE_EVENT_TYPE,
                            r.value.to_le_bytes().to_vec(),
                            Some(proxy_ledger(&mut self.proxies[p])),
                        )
                    };
                    if let Some(msg) = ev {
                        self.fabric.offer(t, gid, msg);
                    }
                }
                self.event_was_active[gid] = r.event_active;
            }
        }

        // 3. Heartbeats: sensors silent past the heartbeat interval
        // renew their proxy lease with a tiny beacon.
        let hb_every = self.config.reliability.heartbeat_every;
        for gid in 0..self.total_sensors() {
            if self.config.faults.is_down(gid, t) {
                continue;
            }
            let (p, s) = self.locate(crate::gid16(gid));
            let local_t = self.clocks[gid].local_time(t);
            let hb = {
                let node = &mut self.nodes[p][s];
                node.maybe_heartbeat(local_t, hb_every, Some(proxy_ledger(&mut self.proxies[p])))
            };
            if let Some(msg) = hb {
                self.fabric.offer(t, gid, msg);
            }
        }

        // 4. Retransmission machinery, billing each attempt to the
        // sending sensor's radio.
        {
            let nodes = &mut self.nodes;
            let spp = self.config.sensors_per_proxy;
            let nproxies = self.config.proxies;
            self.fabric.tick(t, |gid, joules| {
                let p = (gid / spp).min(nproxies - 1);
                let s = gid % spp;
                nodes[p][s]
                    .ledger_mut()
                    .charge(EnergyCategory::RadioTx, joules);
            });
        }

        // 5. Consume deliveries: dedup, gap-detect, renew leases, feed
        // the proxies, and register seal notifications in the range
        // index.
        for (gid, delivery) in self.fabric.poll(epoch_end) {
            // Deliveries land at the sensor's *serving* proxy — after a
            // re-home that is the adopter, not the physical cluster
            // head the sensor started under.
            let p = self.assignment[gid];
            if self.config.faults.proxy_down(p, t) {
                // Straggler that was already in flight when the proxy
                // died: nobody is listening. Dropping it *before* the
                // gap tracker sees its sequence number keeps the span
                // repairable — the eventual successor detects the jump
                // and replays it from the archive.
                continue;
            }
            let prior_covered = self.gaps.covered_until(gid);
            match self
                .gaps
                .observe(gid, delivery.seq, delivery.msg.sent_at, t)
            {
                Observation::Duplicate => continue,
                Observation::Fresh | Observation::Gap { .. } => {}
            }
            if self.liveness.heard(gid, t) {
                // Reconnect after a detected outage: repair the whole
                // silent span even when no sequence jump exists (a
                // rebooted sensor starts cleanly at the next seq).
                self.gaps
                    .request_recovery(gid, prior_covered, delivery.msg.sent_at, t);
            }
            self.proxies[p].on_uplink(&delivery.msg);
        }
        // Seal notifications recorded by the proxies register into the
        // range index here, where the clock correctors live.
        for p in 0..self.config.proxies {
            for (sensor, start, end) in self.proxies[p].take_sealed_spans() {
                let corrector = &self.correctors[sensor as usize];
                self.time_index
                    .register(p, corrector.correct(start), corrector.correct(end));
            }
        }

        // 6. Re-grade liveness and run queued archive-backed repairs.
        for gid in 0..self.total_sensors() {
            self.liveness.check(gid, t);
        }
        self.attempt_recoveries(t);

        // Periodic model training checks, routed by assignment so an
        // adopter trains and pushes for its re-homed sensors. Down
        // proxies train nothing. (The time-range index is maintained by
        // seal notifications and recovery rebuilds, so no periodic
        // refresh happens here.)
        if t - self.last_train_check >= self.config.train_check_every {
            self.last_train_check = t;
            for gid in 0..self.total_sensors() {
                let sp = self.assignment[gid];
                if self.config.faults.is_unreachable(gid, t)
                    || self.config.faults.proxy_down(sp, t)
                {
                    continue;
                }
                let (hp, hs) = self.locate(crate::gid16(gid));
                let node = &mut self.nodes[hp][hs];
                let chan = &mut self.downlinks[hp][hs];
                self.proxies[sp].maybe_train_and_push(t, crate::gid16(gid), node, chan);
            }
            for p in 0..self.config.proxies {
                if !self.config.faults.proxy_down(p, t) {
                    self.proxies[p].refresh_spatial_model();
                }
            }
        }

        // Hourly clock beacons calibrate the correctors.
        if t - self.last_beacon >= SimDuration::from_hours(1) {
            self.last_beacon = t;
            for gid in 0..self.total_sensors() {
                if self.config.faults.is_down(gid, t) {
                    continue;
                }
                let local = self.clocks[gid].local_time(t);
                self.correctors[gid].observe_beacon(local, t);
            }
        }
        self.profiler.end("step_epoch_core", timer);
        self.profiler.epoch();
        t
    }

    /// The default asynchronous query-pipeline pump: every *up* proxy
    /// issues or retransmits downlink pulls for all of its outstanding
    /// queries (fairness-budgeted across the sensors it currently
    /// serves, per the assignment), matches arriving replies back to
    /// pending queries, and completes them — one proxy overlaps many
    /// in-flight pulls across epochs. Deployment-tier drivers replace
    /// this with their own pump (shedding, cross-proxy channels).
    pub fn pump_pipelines(&mut self, t: SimTime) {
        let timer = self.profiler.begin();
        let mut attempts = 0u64;
        for p in 0..self.config.proxies {
            if self.config.faults.proxy_down(p, t) {
                continue;
            }
            let assignment = &self.assignment;
            let mut view: Vec<presto_proxy::PumpSensor<'_>> = self
                .nodes
                .iter_mut()
                .flatten()
                .zip(self.downlinks.iter_mut().flatten())
                .enumerate()
                .filter(|&(gid, _)| assignment[gid] == p)
                .map(|(gid, (node, chan))| presto_proxy::PumpSensor {
                    gid: crate::gid16(gid),
                    node,
                    chan,
                })
                .collect();
            self.proxies[p].pump_queries_view(t, &mut view);
            attempts += self.proxies[p].pipeline().last_pump_attempts() as u64;
        }
        self.profiler.end("pump_pipelines", timer);
        self.profiler.count("pump_pipelines", attempts);
    }

    /// Current serving proxy per sensor (flat global ids).
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// Re-homes a sensor to a new serving proxy: registers it there,
    /// clears the proxy-side half of its downlink channel (the previous
    /// driver's pending-RPC table means nothing to the new one), and
    /// routes its future uplinks, pulls, training, and recovery replays
    /// to the adopter. Cache and replica warm-up is the caller's job —
    /// the deployment tier drives an archive-backed recovery replay
    /// over the outage span, the same warm-up path gap repair uses.
    pub fn rehome_sensor(&mut self, gid: usize, proxy: usize) {
        assert!(proxy < self.config.proxies, "no such proxy");
        if self.assignment[gid] == proxy {
            return;
        }
        self.assignment[gid] = proxy;
        self.proxies[proxy].register_sensor(crate::gid16(gid));
        let (hp, hs) = self.locate(crate::gid16(gid));
        self.downlinks[hp][hs].reset_proxy_state();
    }

    /// Queues an archive-backed recovery replay for every sensor
    /// `proxy` currently serves, from each sensor's last covered
    /// instant up to `t`. The deployment tier calls this when a fenced
    /// proxy rejoins the quorum after a mesh partition heals: its
    /// caches and replicas silently aged while it was cut off (uplinks
    /// kept landing, but nothing cross-checked them), so it re-syncs
    /// through the same archive replay path gap repair uses. Returns
    /// the number of replays queued.
    pub fn resync_proxy(&mut self, proxy: usize, t: SimTime) -> usize {
        let mut queued = 0;
        for gid in 0..self.total_sensors() {
            if self.assignment[gid] != proxy {
                continue;
            }
            let covered = self.gaps.covered_until(gid);
            if covered >= t {
                continue;
            }
            self.gaps.request_recovery(gid, covered, t, t);
            queued += 1;
        }
        queued
    }

    /// Attempts every queued recovery replay: reachable sensors get a
    /// padded archive pull over the missed span; unreachable ones stay
    /// queued for the next epoch. A completed repair rebuilds the
    /// time-range index (lost seal notifications leave it stale for
    /// exactly the spans a repair covers).
    fn attempt_recoveries(&mut self, t: SimTime) {
        let pending = self.gaps.take_pending();
        if pending.is_empty() {
            return;
        }
        let mut repaired = false;
        for r in pending {
            let sp = self.assignment[r.sensor];
            if self.config.faults.is_unreachable(r.sensor, t)
                || self.config.faults.proxy_down(sp, t)
            {
                self.gaps.request_recovery(r.sensor, r.from, r.to, r.detected_at);
                continue;
            }
            let (p, s) = self.locate(crate::gid16(r.sensor));
            let (from, to) = padded_span(r.from, r.to, self.config.reliability.recovery_pad);
            let tolerance = self.config.reliability.recovery_tolerance;
            let node = &mut self.nodes[p][s];
            let chan = &mut self.downlinks[p][s];
            match self.proxies[sp].recover_span(t, crate::gid16(r.sensor), from, to, tolerance, node, chan)
            {
                Some(samples) => {
                    self.gaps.complete(&r, samples as u64, t);
                    // A served pull is proof of life.
                    self.liveness.heard(r.sensor, t);
                    repaired = true;
                }
                None => self.gaps.requeue_failed(r),
            }
        }
        if repaired {
            self.refresh_time_index();
        }
    }

    /// Splits the mutable borrows a query path needs: proxies, nodes,
    /// and downlink channels. Unreachable sensors are handled by the
    /// channels' own fault gates, not by link substitution.
    #[allow(clippy::type_complexity)]
    pub fn split_for_query(
        &mut self,
    ) -> (
        &mut Vec<PrestoProxy>,
        &mut Vec<Vec<SensorNode>>,
        &mut Vec<Vec<DownlinkChannel>>,
    ) {
        (&mut self.proxies, &mut self.nodes, &mut self.downlinks)
    }

    /// Submits a query to the owning proxy's asynchronous pipeline at
    /// the system's current time. Returns `(proxy index, ticket)` — the
    /// completion surfaces under that ticket in
    /// [`PrestoSystem::take_completed_queries`] — or `None` for query
    /// classes the pipeline does not serve (deployment-wide Events) and
    /// for sensors whose serving proxy is down (a dead process accepts
    /// no submissions; enqueuing into its pipeline object would park a
    /// query nothing ever pumps or expires).
    pub fn submit_query(&mut self, q: crate::store::StoreQuery) -> Option<(usize, u64)> {
        let t = self.now();
        let pq = match q {
            crate::store::StoreQuery::Now { sensor, tolerance } => {
                PipelineQuery::Now { sensor, tolerance }
            }
            crate::store::StoreQuery::Past {
                sensor,
                from,
                to,
                tolerance,
            } => PipelineQuery::Past {
                sensor,
                from,
                to,
                tolerance,
            },
            crate::store::StoreQuery::Aggregate {
                sensor,
                from,
                to,
                op,
            } => PipelineQuery::Aggregate {
                sensor,
                from,
                to,
                op,
            },
            crate::store::StoreQuery::Events { .. } => return None,
        };
        let p = self.assignment[pq.sensor() as usize];
        if self.config.faults.proxy_down(p, t) {
            return None;
        }
        let ticket = self.proxies[p].submit_query(t, pq);
        Some((p, ticket))
    }

    /// Drains every pipeline completion across proxies since the last
    /// call, tagged with the owning proxy's index.
    pub fn take_completed_queries(&mut self) -> Vec<(usize, CompletedQuery)> {
        let mut out = Vec::new();
        for (p, proxy) in self.proxies.iter_mut().enumerate() {
            out.extend(proxy.take_completed_queries().into_iter().map(|c| (p, c)));
        }
        out
    }

    /// Pipeline counters summed across proxies (`max_in_flight` is the
    /// per-proxy peak, maxed).
    pub fn pipeline_stats(&self) -> PipelineStats {
        let mut total = PipelineStats::default();
        for p in &self.proxies {
            total.merge(&p.pipeline().stats());
        }
        total
    }

    /// Pending pipeline queries across proxies (leak probe: zero after
    /// every submitted query completed or failed).
    pub fn pipeline_pending_total(&self) -> usize {
        self.proxies.iter().map(|p| p.pipeline().pending_queries()).sum()
    }

    /// Merged two-tier slice-cache counters across proxies (all zero
    /// unless sliced execution is configured).
    pub fn slice_cache_stats(&self) -> SliceCacheStats {
        let mut total = SliceCacheStats::default();
        for p in &self.proxies {
            total.merge(&p.pipeline().slice_cache().stats());
        }
        total
    }

    /// Outstanding async RPC entries across every downlink channel
    /// (leak probe for the pending-RPC tables).
    pub fn async_in_flight_total(&self) -> usize {
        self.downlinks
            .iter()
            .flatten()
            .map(|c| c.async_in_flight())
            .sum()
    }

    /// Current liveness grade of a sensor.
    pub fn health(&self, sensor: u16) -> Health {
        self.liveness.health(sensor as usize)
    }

    /// Fabric counters.
    pub fn fabric_stats(&self) -> FabricStats {
        self.fabric.stats()
    }

    /// Downlink channel counters, summed across every sensor.
    pub fn downlink_stats(&self) -> DownlinkStats {
        let mut total = DownlinkStats::default();
        for ch in self.downlinks.iter().flatten() {
            total.merge(&ch.stats());
        }
        total
    }

    /// Shared fading states (one per proxy) when correlated loss is on.
    pub fn shared_loss(&self) -> &[SharedLossState] {
        &self.shared_loss
    }

    /// Gap/recovery counters.
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.gaps.stats()
    }

    /// Phase timers over the epoch pump.
    pub fn profiler(&self) -> &EpochProfiler {
        &self.profiler
    }

    /// Mutable profiler access: the fleet deployment times its own
    /// phases (mesh, membership, fleet pump) into the same read-out.
    pub fn profiler_mut(&mut self) -> &mut EpochProfiler {
        &mut self.profiler
    }

    /// The `presto-scope` sampler + watchdogs.
    pub fn scope(&self) -> &PrestoScope {
        &self.scope
    }

    /// Mutable scope access (external feeds, deployment-tier ticks).
    pub fn scope_mut(&mut self) -> &mut PrestoScope {
        &mut self.scope
    }

    /// One scope tick at epoch time `t`: builds the telemetry snapshot
    /// and feeds it to the sampler and watchdogs with the fault plan as
    /// blame context. No-op (no snapshot built) when the scope is
    /// disabled. Deployment-tier drivers that pump the pipelines
    /// themselves call this after their own pump instead.
    pub fn scope_tick(&mut self, t: SimTime) {
        if !self.scope.enabled() {
            return;
        }
        // Observe only the subtrees the scope's paths reach: a tick
        // costs a partial tree build plus a few walks, not the full
        // every-component snapshot.
        let snap = self.snapshot_filtered(&|root| self.scope.needs_root(root));
        self.scope.sample(t, &snap, &self.config.faults);
    }

    /// One unified metrics snapshot across every tier this system
    /// holds. Per-proxy and per-sensor counters are *observed* into
    /// shared sections, which sums them — the same aggregation a
    /// multi-proxy fleet report needs, with `max`-annotated fields
    /// (peak in-flight) taking the maximum instead.
    pub fn telemetry_snapshot(&self) -> Snapshot {
        self.snapshot_filtered(&|_| true)
    }

    /// Builds the snapshot tree, observing only top-level sections
    /// `want` accepts. `telemetry_snapshot` passes the accept-all
    /// filter; `scope_tick` (and the fleet deployment's own tick)
    /// passes the scope's followed roots so the per-epoch sample skips
    /// every subtree it would never read.
    pub fn snapshot_filtered(&self, want: &dyn Fn(&str) -> bool) -> Snapshot {
        let mut snap = Snapshot::new();
        let root = &mut snap.root;
        for p in &self.proxies {
            if want("proxy") {
                root.observe("proxy", &p.stats());
            }
            if want("pipeline") {
                root.observe("pipeline", &p.pipeline().stats());
            }
            if want("slice") {
                root.observe("slice", &p.pipeline().slice_cache().stats());
            }
        }
        // Live trace-retention gauges: drop counts are the honest
        // "recorder overflowed" signal the scope's leak probes read.
        if want("trace") {
            let tr = root.child("trace");
            for p in &self.proxies {
                let tracer = p.pipeline().tracer();
                tr.counter("finished_dropped", tracer.finished_dropped());
                tr.counter("recorder_dropped", tracer.recorder().dropped());
                tr.counter("recorder_len", tracer.recorder().len() as u64);
                tr.counter("open", tracer.open_count() as u64);
            }
        }
        if want("downlink") {
            root.observe("downlink", &self.downlink_stats());
        }
        if want("fabric") {
            root.observe("fabric", &self.fabric.stats());
        }
        if want("liveness") {
            root.observe("liveness", &self.liveness.stats());
        }
        if want("recovery") {
            root.observe("recovery", &self.gaps.stats());
        }
        if want("sensor") || want("flash") || want("archive") {
            for n in self.nodes.iter().flatten() {
                if want("sensor") {
                    root.observe("sensor", &n.stats());
                }
                if want("flash") {
                    root.observe("flash", &n.archive().flash_stats());
                }
                if want("archive") {
                    root.observe("archive", &n.archive().stats());
                }
            }
        }
        if want("profiler") {
            root.observe("profiler", &self.profiler);
        }
        if want("scope") {
            root.observe("scope", &self.scope);
        }
        snap
    }

    /// The injected fault plan.
    pub fn faults(&self) -> &FaultPlan {
        &self.config.faults
    }

    /// Rebuilds the time-range index from every sensor's *live* segment
    /// spans, with endpoints mapped through the sensor's clock corrector
    /// so registered intervals are in reference time (archives stamp in
    /// drifting local time, and accumulated skew is unbounded — no
    /// fixed routing slack could cover it). Rebuilding rather than
    /// accumulating keeps the index bounded by live segments — entries
    /// for reclaimed segments drop out — and the span count is small
    /// (at most blocks-per-archive per sensor), so consumers rebuild
    /// on demand instead of relying on a periodic refresh.
    pub fn refresh_time_index(&mut self) {
        self.time_index.clear();
        for (p, cluster) in self.nodes.iter().enumerate() {
            for (s, node) in cluster.iter().enumerate() {
                let corrector = &self.correctors[p * self.config.sensors_per_proxy + s];
                for (start, end) in node.archive().segment_spans() {
                    self.time_index
                        .register(p, corrector.correct(start), corrector.correct(end));
                }
            }
        }
    }

    /// Routes a time range through the interval index, returning the
    /// proxies holding overlapping archived data and the routing hop
    /// count. An empty (not yet refreshed) index falls back to every
    /// proxy — correct, just unpruned.
    pub fn route_range(&self, from: SimTime, to: SimTime) -> (Vec<usize>, u64) {
        if self.time_index.is_empty() {
            return ((0..self.config.proxies).collect(), 0);
        }
        let (proxies, stats) = self.time_index.proxies_overlapping(from, to);
        (proxies, stats.hops)
    }

    /// Runs for a duration.
    pub fn run(&mut self, duration: SimDuration) {
        let epochs = duration.div_duration(self.config.lab.epoch);
        for _ in 0..epochs {
            self.step_epoch();
        }
        // Settle idle listening to the horizon.
        let end = self.now();
        for cluster in &mut self.nodes {
            for node in cluster {
                node.advance_to(end);
            }
        }
    }

    /// Aggregate deployment report.
    pub fn report(&self, days: f64) -> SystemReport {
        let total_sensors = self.total_sensors().max(1) as f64;
        let sensor_j: f64 = self
            .nodes
            .iter()
            .flatten()
            .map(|n| n.ledger().total())
            .sum();
        let proxy_j: f64 = self.proxies.iter().map(|p| p.ledger().total()).sum();
        let fs = self.fabric.stats();
        SystemReport {
            sensor_energy_per_day_j: sensor_j / total_sensors / days.max(1e-9),
            proxy_energy_j: proxy_j,
            uplinks: self.proxies.iter().map(|p| p.stats().uplinks).sum(),
            models_pushed: self.proxies.iter().map(|p| p.stats().models_pushed).sum(),
            events: self.proxies.iter().map(|p| p.stats().events_cached).sum(),
            retransmits: fs.retransmits,
            messages_dropped: fs.dropped_retries + fs.dropped_budget,
            gaps_detected: self.gaps.stats().gaps_detected,
            recoveries: self.gaps.stats().recoveries,
            heartbeats: self
                .nodes
                .iter()
                .flatten()
                .map(|n| n.stats().heartbeats_sent)
                .sum(),
        }
    }

    /// Merged energy ledger over all sensors.
    pub fn sensor_ledger_total(&self) -> EnergyLedger {
        let mut total = EnergyLedger::new();
        for n in self.nodes.iter().flatten() {
            total.merge(n.ledger());
        }
        total
    }
}

/// Borrow helper: the proxy's ledger for receiver-side energy charging.
fn proxy_ledger(proxy: &mut PrestoProxy) -> &mut EnergyLedger {
    proxy.ledger_mut()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SystemConfig {
        SystemConfig {
            proxies: 2,
            sensors_per_proxy: 3,
            ..SystemConfig::default()
        }
    }

    #[test]
    fn builds_and_routes() {
        let sys = PrestoSystem::new(small());
        assert_eq!(sys.total_sensors(), 6);
        assert_eq!(sys.locate(0), (0, 0));
        assert_eq!(sys.locate(4), (1, 1));
        let (p, _) = sys.route(4);
        assert_eq!(p, 1);
        let (p0, _) = sys.route(2);
        assert_eq!(p0, 0);
    }

    #[test]
    fn runs_and_installs_models() {
        let mut sys = PrestoSystem::new(small());
        sys.run(SimDuration::from_days(1));
        let r = sys.report(1.0);
        assert!(r.models_pushed >= 6, "models pushed: {}", r.models_pushed);
        assert!(r.uplinks > 0);
        assert!(r.sensor_energy_per_day_j > 0.0);
        // Every sensor carries a model replica after a day.
        assert!(sys.nodes.iter().flatten().all(|n| n.has_model()));
    }

    #[test]
    fn model_driven_push_reduces_traffic_over_time() {
        let mut sys = PrestoSystem::new(small());
        sys.run(SimDuration::from_days(1));
        let day1: u64 = sys
            .nodes
            .iter()
            .flatten()
            .map(|n| n.stats().bytes_sent)
            .sum();
        sys.run(SimDuration::from_days(1));
        let day2: u64 = sys
            .nodes
            .iter()
            .flatten()
            .map(|n| n.stats().bytes_sent)
            .sum::<u64>()
            - day1;
        // Day 1 includes the no-model phase (push everything); day 2 is
        // fully model-driven and must be far quieter.
        assert!(day2 * 2 < day1, "day1 {day1} vs day2 {day2}");
    }

    #[test]
    fn rare_events_reach_the_proxy() {
        let mut cfg = small();
        cfg.lab.events_per_day = 8.0;
        let mut sys = PrestoSystem::new(cfg);
        sys.run(SimDuration::from_days(2));
        let r = sys.report(2.0);
        assert!(r.events > 0, "no events cached at proxies");
    }

    #[test]
    fn clock_correctors_calibrate_under_drift() {
        let mut cfg = small();
        cfg.clock_skew_ppm = 50.0;
        let mut sys = PrestoSystem::new(cfg);
        sys.run(SimDuration::from_hours(6));
        assert!(sys.correctors.iter().all(|c| c.is_calibrated()));
        // Corrected timestamps land near the truth.
        let t = sys.now();
        for gid in 0..sys.total_sensors() {
            let local = sys.clocks[gid].local_time(t);
            let corrected = sys.correctors[gid].correct(local);
            let err = (corrected.as_secs_f64() - t.as_secs_f64()).abs();
            assert!(err < 0.1, "sensor {gid} residual {err}");
        }
    }

    #[test]
    fn range_routing_prunes_non_overlapping_proxies() {
        let mut sys = PrestoSystem::new(small());
        sys.run(SimDuration::from_days(1));
        sys.refresh_time_index();
        assert!(!sys.time_index.is_empty(), "segments were never registered");
        // Every proxy archived the first day.
        let (covered, _) = sys.route_range(SimTime::from_hours(1), SimTime::from_hours(2));
        assert_eq!(covered, vec![0, 1]);
        // Nothing was archived a month out: every proxy is pruned.
        let (none, _) = sys.route_range(SimTime::from_days(30), SimTime::from_days(31));
        assert!(none.is_empty(), "future window should prune all proxies");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut cfg = small();
            cfg.seed = seed;
            let mut sys = PrestoSystem::new(cfg);
            sys.run(SimDuration::from_hours(12));
            sys.sensor_ledger_total().total()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn seal_notifications_maintain_time_index_without_rebuild() {
        let mut sys = PrestoSystem::new(small());
        sys.run(SimDuration::from_days(1));
        // No refresh_time_index call: the index was fed by SegmentSeal
        // uplinks alone.
        assert!(
            !sys.time_index.is_empty(),
            "no seal notification reached the index"
        );
        let (covered, _) = sys.route_range(SimTime::from_hours(1), SimTime::from_hours(2));
        assert_eq!(covered, vec![0, 1]);
        let sealed: u64 = sys
            .nodes
            .iter()
            .flatten()
            .map(|n| n.stats().seals_sent)
            .sum();
        assert!(sealed > 0, "sensors never announced a seal");
    }

    /// Tight leases for failure tests: detection within minutes.
    fn tight_reliability() -> presto_reliability::ReliabilityConfig {
        presto_reliability::ReliabilityConfig {
            heartbeat_every: SimDuration::from_mins(2),
            liveness: presto_reliability::LivenessConfig {
                lease: SimDuration::from_mins(5),
                dead_after: SimDuration::from_mins(15),
            },
            ..presto_reliability::ReliabilityConfig::default()
        }
    }

    #[test]
    fn blackout_is_detected_and_replayed_from_the_archive() {
        let mut cfg = small();
        cfg.reliability = tight_reliability();
        // Sensor 0's link dies for two hours mid-run; the sensor keeps
        // sampling into its archive the whole time.
        cfg.faults = presto_sim::FaultPlan::none().with_blackout_of(
            vec![0],
            SimTime::from_hours(3),
            SimTime::from_hours(5),
        );
        let mut sys = PrestoSystem::new(cfg);
        sys.run(SimDuration::from_hours(8));

        let ls = sys.liveness.stats();
        assert!(ls.suspected >= 1, "outage never suspected");
        assert!(ls.reconnected >= 1, "reconnect never observed");
        assert_eq!(sys.health(0), Health::Live, "sensor should be back");

        let rs = sys.recovery_stats();
        assert!(rs.recoveries >= 1, "no recovery replay completed");
        assert!(
            rs.samples_replayed > 100,
            "blackout span not replayed: {} samples",
            rs.samples_replayed
        );
        // The proxy's cache now covers the blacked-out window densely.
        let cache = sys.proxies[0].cache(0).expect("registered sensor");
        let coverage = cache.coverage(
            SimTime::from_hours(3) + SimDuration::from_mins(5),
            SimTime::from_hours(5) - SimDuration::from_mins(5),
            SimDuration::from_secs(31),
        );
        assert!(coverage > 0.9, "post-recovery coverage {coverage}");
    }

    #[test]
    fn crash_reboot_wipes_ram_but_archive_survives() {
        let mut cfg = small();
        cfg.reliability = tight_reliability();
        cfg.faults = presto_sim::FaultPlan::none().with_crash(
            0,
            SimTime::from_hours(3),
            SimTime::from_hours(4),
        );
        let mut sys = PrestoSystem::new(cfg);
        sys.run(SimDuration::from_hours(8));

        let node = &sys.nodes[0][0];
        assert_eq!(node.stats().reboots, 1);
        // During the crash nothing was sampled: the truth has a gap,
        // and the sensor archived nothing in the window.
        let mut ledger = EnergyLedger::new();
        let in_crash = sys.nodes[0][0]
            .archive_mut()
            .query_range(
                SimTime::from_hours(3) + SimDuration::from_mins(1),
                SimTime::from_hours(4) - SimDuration::from_mins(1),
                &mut ledger,
            )
            .expect("archive readable");
        assert!(in_crash.is_empty(), "crashed sensor kept archiving");
        // But everything before the crash is still there.
        let before = sys.nodes[0][0]
            .archive_mut()
            .query_range(SimTime::from_hours(1), SimTime::from_hours(2), &mut ledger)
            .expect("archive readable");
        assert!(before.len() > 100, "pre-crash archive lost");
        // The sensor reported back in and was marked live again.
        assert_eq!(sys.health(0), Health::Live);
        assert!(sys.liveness.stats().reconnected >= 1);
    }

    #[test]
    fn lossy_fabric_exercises_retransmit_and_gap_recovery() {
        let mut cfg = small();
        cfg.proxies = 1;
        cfg.reliability = tight_reliability();
        cfg.reliability.fabric.up_loss =
            presto_net::LossProcess::Gilbert(presto_net::GilbertElliott::indoor());
        cfg.reliability.fabric.down_loss = presto_net::LossProcess::Bernoulli(0.1);
        let mut sys = PrestoSystem::new(cfg);
        sys.run(SimDuration::from_hours(12));
        let fs = sys.fabric_stats();
        assert!(fs.lost_in_channel > 0, "channel never lost a message");
        assert!(fs.retransmits > 0, "loss never triggered retransmission");
        assert!(
            fs.delivered > fs.offered / 2,
            "retransmission failed to recover deliveries: {fs:?}"
        );
        // Whatever was permanently dropped surfaced as gaps; any
        // detected gap must eventually be repaired.
        let rs = sys.recovery_stats();
        if rs.gaps_detected > 0 {
            assert!(
                rs.recoveries > 0,
                "gaps detected but never repaired: {rs:?}"
            );
        }
    }

    #[test]
    fn correlated_burst_fails_every_sensors_pulls_honestly() {
        use crate::store::{StoreQuery, UnifiedStore};
        let mut cfg = small();
        cfg.proxies = 1;
        cfg.reliability.shared_fading = Some(presto_net::GilbertElliott {
            p_gb: 0.002,
            p_bg: 0.2,
            loss_good: 0.0,
            loss_bad: 1.0, // a fade takes the whole neighbourhood down
        });
        // Deterministic burst mid-run, injected through the fault plan.
        let burst_from = SimTime::from_hours(5);
        let burst_to = SimTime::from_hours(6);
        cfg.faults = presto_sim::FaultPlan::none().with_shared_burst(burst_from, burst_to);
        let mut sys = PrestoSystem::new(cfg);
        assert_eq!(sys.shared_loss().len(), 1, "one shared state per proxy");

        // Run into the middle of the burst.
        sys.run(SimDuration::from_hours(5) + SimDuration::from_mins(30));
        assert!(sys.shared_loss()[0].in_bad(), "burst window must pin bad");
        let pull_failures_before: u64 = sys.proxies.iter().map(|p| p.stats().pull_failures).sum();
        for sensor in 0..sys.total_sensors() as u16 {
            // Tolerance far below the push tolerance defeats
            // extrapolation, forcing the pull path.
            let r = UnifiedStore::new(&mut sys).query(StoreQuery::Now {
                sensor,
                tolerance: 0.05,
            });
            assert_eq!(
                r.source,
                presto_proxy::AnswerSource::Failed,
                "sensor {sensor} pulled through a total shared fade"
            );
            assert!(r.sigma.is_infinite(), "failed pulls must advertise nothing");
            // The failed RPC's timeouts surface in the answer latency.
            assert!(r.latency >= SimDuration::from_secs(5), "{:?}", r.latency);
        }
        let pull_failures_during: u64 = sys.proxies.iter().map(|p| p.stats().pull_failures).sum();
        assert_eq!(
            pull_failures_during - pull_failures_before,
            sys.total_sensors() as u64,
            "every burst-time pull must surface in pull_failures"
        );
        let dl = sys.downlink_stats();
        assert!(dl.retransmits > 0, "burst pulls must have retried: {dl:?}");

        // After the burst the same queries succeed again.
        sys.run(SimDuration::from_hours(1));
        assert!(!sys.shared_loss()[0].in_bad(), "burst must release");
        let r = UnifiedStore::new(&mut sys).query(StoreQuery::Now {
            sensor: 0,
            tolerance: 0.05,
        });
        assert_ne!(r.source, presto_proxy::AnswerSource::Failed);
    }

    #[test]
    fn shared_fading_correlates_the_whole_neighbourhood() {
        // With per-channel independent loss, per-sensor delivery dips are
        // uncorrelated; under shared fading the fabric sees common bursts.
        // Sanity-check the plumbing end to end: the correlated run still
        // delivers (retransmission covers the bursts) and every channel
        // observed loss.
        let mut cfg = small();
        cfg.proxies = 1;
        cfg.reliability.shared_fading = Some(presto_net::GilbertElliott {
            p_gb: 0.05,
            p_bg: 0.3,
            loss_good: 0.01,
            loss_bad: 0.95,
        });
        let mut sys = PrestoSystem::new(cfg);
        sys.run(SimDuration::from_hours(8));
        let fs = sys.fabric_stats();
        assert!(fs.lost_in_channel > 0, "shared fading never lost a message");
        assert!(fs.retransmits > 0);
        assert!(
            fs.delivered > fs.offered / 2,
            "retransmission failed to recover deliveries: {fs:?}"
        );
        assert!(sys.shared_loss()[0].steps() > 0, "driver never advanced the chain");
    }

    #[test]
    fn pipeline_serves_concurrent_queries_under_loss_without_leaks() {
        use crate::store::StoreQuery;
        let mut cfg = small();
        cfg.proxies = 1;
        cfg.sensors_per_proxy = 4;
        cfg.reliability.downlink.request_loss = presto_net::LossProcess::Bernoulli(0.3);
        cfg.reliability.downlink.reply_loss = presto_net::LossProcess::Bernoulli(0.3);
        let mut sys = PrestoSystem::new(cfg);
        sys.run(SimDuration::from_days(1));
        // A burst of tight-tolerance PAST queries across every sensor:
        // none can be answered radio-free, so they all enqueue pulls.
        let mut tickets = Vec::new();
        for sensor in 0..4u16 {
            for w in 0..3u64 {
                let from = SimTime::from_hours(14 + 2 * w);
                tickets.push(
                    sys.submit_query(StoreQuery::Past {
                        sensor,
                        from,
                        to: from + SimDuration::from_mins(30),
                        tolerance: 0.05,
                    })
                    .expect("past queries are pipelined"),
                );
            }
        }
        // A window a recovery replay happened to densify can complete
        // at submit from cache; everything else needs a pull.
        let immediate: Vec<_> = sys.take_completed_queries();
        assert_eq!(sys.pipeline_pending_total() + immediate.len(), 12);
        assert!(
            sys.pipeline_pending_total() >= 8,
            "most tight-tolerance queries must need pulls"
        );
        let fast_tickets: Vec<u64> = immediate.iter().map(|(_, c)| c.id).collect();
        // Pump across epochs until every query terminates (bounded by
        // the pipeline deadline).
        let deadline = sys.config().proxy.pipeline.deadline;
        let epochs = deadline.div_duration(sys.config().lab.epoch) + 2;
        let mut done = immediate;
        for _ in 0..epochs {
            sys.step_epoch();
            done.extend(sys.take_completed_queries());
            if done.len() == tickets.len() {
                break;
            }
        }
        assert_eq!(done.len(), tickets.len(), "every query must terminate");
        // No hangs, no leaks: pending queries and pending-RPC tables
        // are empty once everything completed.
        assert_eq!(sys.pipeline_pending_total(), 0);
        assert_eq!(sys.async_in_flight_total(), 0);
        let ps = sys.pipeline_stats();
        assert!(
            ps.max_in_flight >= 4,
            "loss must force overlapping in-flight pulls: {ps:?}"
        );
        for (_, c) in &done {
            if fast_tickets.contains(&c.id) {
                continue;
            }
            match &c.answer {
                presto_proxy::PipelineAnswer::Series(a) => {
                    assert!(
                        a.source == presto_proxy::AnswerSource::Pulled
                            || a.source == presto_proxy::AnswerSource::Failed,
                        "{:?}",
                        a.source
                    );
                    if a.source == presto_proxy::AnswerSource::Pulled {
                        assert!(!a.samples.is_empty());
                    }
                }
                other => panic!("past queries produce series: {other:?}"),
            }
        }
    }

    #[test]
    fn pipeline_fast_paths_complete_without_radio_work() {
        use crate::store::StoreQuery;
        let mut sys = PrestoSystem::new(small());
        sys.run(SimDuration::from_days(1));
        let before = sys.pipeline_stats();
        for sensor in 0..6u16 {
            sys.submit_query(StoreQuery::Now {
                sensor,
                tolerance: 1.5,
            });
        }
        let done = sys.take_completed_queries();
        assert_eq!(done.len(), 6, "loose NOW queries complete at submit");
        let after = sys.pipeline_stats();
        assert_eq!(after.completed_fast - before.completed_fast, 6);
        assert_eq!(after.rpcs_issued, before.rpcs_issued, "no radio work");
        assert_eq!(sys.pipeline_pending_total(), 0);
    }

    #[test]
    fn proxy_blackout_gates_its_sensors_and_rehoming_restores_service() {
        use crate::store::{StoreQuery, UnifiedStore};
        let mut cfg = small();
        cfg.reliability = tight_reliability();
        // Proxy 1 dies at hour 6 and never reboots.
        cfg.faults =
            presto_sim::FaultPlan::none().with_proxy_crash(1, SimTime::from_hours(6), SimTime::from_hours(1000));
        let mut sys = PrestoSystem::new(cfg);
        sys.run(SimDuration::from_hours(6));
        // Runs are epoch-quantized: step across the crash boundary so
        // the consumption baseline is taken with the proxy down.
        while !sys.faults().proxy_down(1, sys.now()) {
            sys.step_epoch();
        }
        sys.step_epoch();
        let uplinks_at_crash = sys.proxies[1].stats().uplinks;
        assert!(uplinks_at_crash > 0);

        // An hour into the blackout: proxy 1 consumed nothing more, its
        // sensors' fabric links are gated, and a query towards one of
        // its sensors fails honestly.
        sys.run(SimDuration::from_hours(1));
        assert_eq!(
            sys.proxies[1].stats().uplinks,
            uplinks_at_crash,
            "a down proxy must consume nothing"
        );
        assert!(
            sys.proxies[1].cache(4).is_none_or(|c| c.is_empty()),
            "crash wiped the caches"
        );
        let r = UnifiedStore::new(&mut sys).query(StoreQuery::Now {
            sensor: 4,
            tolerance: 0.05,
        });
        assert_eq!(r.source, presto_proxy::AnswerSource::Failed);
        assert!(r.sigma.is_infinite());

        // Re-home proxy 1's sensors to proxy 0; service resumes there.
        for gid in 3..6usize {
            sys.rehome_sensor(gid, 0);
        }
        assert_eq!(sys.assignment()[4], 0);
        sys.run(SimDuration::from_hours(2));
        // The adopter heard the re-homed sensors (uplinks flow again) …
        assert!(
            sys.health(4) == Health::Live,
            "re-homed sensor must report in at the adopter: {:?}",
            sys.health(4)
        );
        // … and answers queries for them.
        let r = UnifiedStore::new(&mut sys).query(StoreQuery::Now {
            sensor: 4,
            tolerance: 1.5,
        });
        assert_ne!(r.source, presto_proxy::AnswerSource::Failed, "{r:?}");
        // The gap over the blackout was repaired from the archive into
        // the adopter's cache.
        let rs = sys.recovery_stats();
        assert!(rs.recoveries >= 1, "no recovery replay after re-home: {rs:?}");
        // Leak probes: nothing outstanding anywhere.
        assert_eq!(sys.pipeline_pending_total(), 0);
        assert_eq!(sys.async_in_flight_total(), 0);
    }

    #[test]
    fn dead_sensor_health_reaches_dead_and_widens_confidence() {
        let mut cfg = small();
        cfg.reliability = tight_reliability();
        // Crash for the whole back half of the run, no reboot.
        cfg.faults = presto_sim::FaultPlan::none().with_crash(
            0,
            SimTime::from_hours(2),
            SimTime::from_hours(100),
        );
        let mut sys = PrestoSystem::new(cfg);
        sys.run(SimDuration::from_hours(4));
        assert_eq!(sys.health(0), Health::Dead);
        assert!(sys.health(0).widen_sigma(0.1, 1.0).is_infinite());
        // Unaffected sensors stay live.
        assert_eq!(sys.health(1), Health::Live);
    }
}
