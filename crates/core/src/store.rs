//! The unified logical store (paper §5).
//!
//! One query interface over every proxy and sensor: the store locates
//! the responsible proxy through the Skip Graph (counting routing hops),
//! then lets that proxy answer through its cache → extrapolation → pull
//! pipeline. Timestamps in PAST answers pass through the sensor's clock
//! corrector so cross-proxy views are temporally consistent.

use presto_proxy::AnswerSource;
use presto_reliability::Health;
use presto_sim::{SimDuration, SimTime};

use crate::system::PrestoSystem;

/// A query against the unified store.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StoreQuery {
    /// Current value of one sensor.
    Now {
        /// Global sensor id.
        sensor: u16,
        /// Acceptable absolute error.
        tolerance: f64,
    },
    /// Historical series of one sensor.
    Past {
        /// Global sensor id.
        sensor: u16,
        /// Range start.
        from: SimTime,
        /// Range end.
        to: SimTime,
        /// Acceptable absolute error.
        tolerance: f64,
    },
    /// Events across the whole deployment in a range (unified ordered
    /// view).
    Events {
        /// Range start.
        from: SimTime,
        /// Range end.
        to: SimTime,
    },
    /// An aggregate over one sensor's history; evaluated at the proxy
    /// when cached, otherwise shipped to the sensor as an operator.
    Aggregate {
        /// Global sensor id.
        sensor: u16,
        /// Range start.
        from: SimTime,
        /// Range end.
        to: SimTime,
        /// The operator.
        op: presto_sensor::AggregateOp,
    },
}

/// A response from the unified store.
#[derive(Clone, Debug, PartialEq)]
pub struct StoreResponse {
    /// Scalar answer (NOW) or series (PAST); events come as
    /// `(t, sensor, type)` triples encoded in `events`.
    pub value: Option<f64>,
    /// Series for PAST queries.
    pub series: Vec<(SimTime, f64)>,
    /// Events for event queries, ordered by corrected time.
    pub events: Vec<(SimTime, u16, u16)>,
    /// How the answer was produced.
    pub source: AnswerSource,
    /// Confidence bound (one sigma), widened by the target sensor's
    /// liveness grade: a Suspect sensor's extrapolation guarantee may
    /// have been silently broken, a Dead sensor's carries no weight.
    pub sigma: f64,
    /// Liveness grade of the target sensor at answer time (Live for
    /// multi-sensor event queries).
    pub health: Health,
    /// End-to-end latency including index routing.
    pub latency: SimDuration,
    /// Skip-graph routing hops.
    pub index_hops: u64,
}

/// The unified store facade over a running system.
pub struct UnifiedStore<'a> {
    system: &'a mut PrestoSystem,
    /// Per-hop proxy-overlay latency (wired mesh).
    pub hop_latency: SimDuration,
}

impl<'a> UnifiedStore<'a> {
    /// Wraps a system.
    pub fn new(system: &'a mut PrestoSystem) -> Self {
        UnifiedStore {
            system,
            hop_latency: SimDuration::from_millis(5),
        }
    }

    /// Resolves a single-sensor query's mutable targets: the owning
    /// proxy, the sensor node, and its downlink channel — with the
    /// channel's fault gate refreshed for the query instant, so a pull
    /// towards a crashed or blacked-out sensor times out and fails
    /// exactly as on real hardware.
    fn query_target(
        system: &mut PrestoSystem,
        sensor: u16,
        t: SimTime,
    ) -> (
        &mut presto_proxy::PrestoProxy,
        &mut presto_sensor::SensorNode,
        &mut presto_reliability::DownlinkChannel,
    ) {
        let (p, s) = system.locate(sensor);
        // The serving proxy follows the assignment (an adopter after a
        // re-home); the node and its channel stay with the physical
        // cluster.
        let serving = system.assignment()[sensor as usize];
        let unreachable = system.faults().is_unreachable(sensor as usize, t)
            || system.faults().proxy_down(serving, t);
        let (proxies, nodes, downlinks) = system.split_for_query();
        let chan = &mut downlinks[p][s];
        chan.set_link_up(!unreachable);
        (&mut proxies[serving], &mut nodes[p][s], chan)
    }

    /// Widens an answer's confidence bound by the sensor's health. A
    /// pull that just succeeded is contact and needs no widening; a
    /// failed answer carries none to widen.
    fn widened(system: &PrestoSystem, sensor: u16, source: AnswerSource, sigma: f64) -> f64 {
        match source {
            AnswerSource::Pulled => sigma,
            AnswerSource::Failed => f64::INFINITY,
            _ => system
                .health(sensor)
                .widen_sigma(sigma, system.config().push_tolerance),
        }
    }

    /// Executes a query at the system's current time.
    pub fn query(&mut self, q: StoreQuery) -> StoreResponse {
        let t = self.system.now();
        match q {
            StoreQuery::Now { sensor, tolerance } => {
                let (proxy_idx, hops) = self.system.route(sensor);
                let (p, _) = self.system.locate(sensor);
                debug_assert_eq!(p, proxy_idx);
                let a = {
                    let (proxy, node, link) = Self::query_target(self.system, sensor, t);
                    proxy.answer_now(t, sensor, tolerance, node, link)
                };
                StoreResponse {
                    value: Some(a.value),
                    series: Vec::new(),
                    events: Vec::new(),
                    source: a.source,
                    sigma: Self::widened(self.system, sensor, a.source, a.sigma),
                    health: self.system.health(sensor),
                    latency: a.latency + self.hop_latency * hops,
                    index_hops: hops,
                }
            }
            StoreQuery::Past {
                sensor,
                from,
                to,
                tolerance,
            } => {
                let (proxy_idx, hops) = self.system.route(sensor);
                let (p, _) = self.system.locate(sensor);
                debug_assert_eq!(p, proxy_idx);
                let a = {
                    let (proxy, node, link) = Self::query_target(self.system, sensor, t);
                    proxy.answer_past(t, sensor, from, to, tolerance, node, link)
                };
                // Correct timestamps back to reference time.
                let corrector = &self.system.correctors[sensor as usize];
                let series: Vec<(SimTime, f64)> = a
                    .samples
                    .into_iter()
                    .map(|(ts, v)| (corrector.correct(ts), v))
                    .collect();
                // A past series has no scalar sigma; extrapolated spans
                // inherit the (widened) push-tolerance guarantee.
                let sigma = if a.source == AnswerSource::Extrapolated {
                    Self::widened(
                        self.system,
                        sensor,
                        a.source,
                        self.system.config().push_tolerance,
                    )
                } else if a.source == AnswerSource::Failed {
                    f64::INFINITY
                } else {
                    0.0
                };
                StoreResponse {
                    value: None,
                    series,
                    events: Vec::new(),
                    source: a.source,
                    sigma,
                    health: self.system.health(sensor),
                    latency: a.latency + self.hop_latency * hops,
                    index_hops: hops,
                }
            }
            StoreQuery::Events { from, to } => {
                // Route the range through the interval index first:
                // proxies whose sensors archived nothing overlapping the
                // window are pruned before their caches are consulted.
                // The index is maintained incrementally by segment-seal
                // notifications (and rebuilt after recovery replays), so
                // no per-query rebuild happens here; spans still in an
                // unsealed segment are covered by the cached-event-span
                // check below. Spans are registered in corrected
                // reference time, so the slack only needs to cover the
                // correction residual plus the uncalibrated first hour
                // (offsets of ~1 s sigma; skew accumulates < 0.2 s
                // before the first beacon) — a minute is comfortably
                // conservative.
                let slack = SimDuration::from_secs(60);
                let (mut candidates, route_hops) =
                    self.system.route_range(from - slack, to + slack);
                // Cached events are not guaranteed archive-backed (an
                // append can fail while the push succeeds), so also
                // visit any proxy whose cached-event span overlaps the
                // padded window — an O(proxies) check that preserves
                // the archive pruning.
                for (p, proxy) in self.system.proxies.iter().enumerate() {
                    if candidates.contains(&p) {
                        continue;
                    }
                    if let Some((lo, hi)) = proxy.events_span() {
                        if lo <= to + slack && hi >= from - slack {
                            candidates.push(p);
                        }
                    }
                }
                candidates.sort_unstable();
                let mut events: Vec<(SimTime, u16, u16)> = Vec::new();
                for &p in &candidates {
                    // Binary-searched range read over the time-indexed
                    // event cache (padded by the clock slack, since the
                    // cache orders by uncorrected sensor time), then an
                    // exact corrected-time filter.
                    for e in self.system.proxies[p]
                        .events()
                        .range(from - slack, to + slack)
                    {
                        let corrected = self.system.correctors[e.sensor as usize].correct(e.t);
                        if corrected >= from && corrected <= to {
                            events.push((corrected, e.sensor, e.event_type));
                        }
                    }
                }
                events.sort();
                let hops = route_hops + candidates.len() as u64;
                StoreResponse {
                    value: None,
                    series: Vec::new(),
                    events,
                    source: AnswerSource::CacheHit,
                    sigma: 0.0,
                    health: Health::Live,
                    latency: self.hop_latency * hops,
                    index_hops: hops,
                }
            }
            StoreQuery::Aggregate {
                sensor,
                from,
                to,
                op,
            } => {
                let (proxy_idx, hops) = self.system.route(sensor);
                let (p, _) = self.system.locate(sensor);
                debug_assert_eq!(p, proxy_idx);
                let a = {
                    let (proxy, node, link) = Self::query_target(self.system, sensor, t);
                    proxy.answer_aggregate(t, sensor, from, to, op, node, link)
                };
                StoreResponse {
                    value: Some(a.value),
                    series: Vec::new(),
                    events: Vec::new(),
                    source: a.source,
                    sigma: Self::widened(self.system, sensor, a.source, a.sigma),
                    health: self.system.health(sensor),
                    latency: a.latency + self.hop_latency * hops,
                    index_hops: hops,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;

    fn running_system(days: u64) -> PrestoSystem {
        let mut sys = PrestoSystem::new(SystemConfig {
            proxies: 2,
            sensors_per_proxy: 3,
            ..SystemConfig::default()
        });
        sys.run(SimDuration::from_days(days));
        sys
    }

    #[test]
    fn now_query_answers_within_tolerance() {
        let mut sys = running_system(1);
        let truth = sys.truth.clone();
        let mut store = UnifiedStore::new(&mut sys);
        for sensor in 0..6u16 {
            let r = store.query(StoreQuery::Now {
                sensor,
                tolerance: 1.5,
            });
            let v = r.value.expect("NOW answers carry a value");
            let err = (v - truth[sensor as usize]).abs();
            assert!(
                err <= 2.0,
                "sensor {sensor}: {v} vs {} (source {:?})",
                truth[sensor as usize],
                r.source
            );
            assert_ne!(r.source, AnswerSource::Failed);
        }
    }

    #[test]
    fn past_query_returns_series() {
        let mut sys = running_system(1);
        let mut store = UnifiedStore::new(&mut sys);
        let r = store.query(StoreQuery::Past {
            sensor: 4,
            from: SimTime::from_hours(10),
            to: SimTime::from_hours(11),
            tolerance: 1.0,
        });
        assert!(!r.series.is_empty());
        assert!(r.series.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_ne!(r.source, AnswerSource::Failed);
    }

    #[test]
    fn events_view_is_globally_ordered() {
        let mut sys = PrestoSystem::new(SystemConfig {
            proxies: 2,
            sensors_per_proxy: 3,
            lab: presto_workloads::LabParams {
                events_per_day: 10.0,
                ..presto_workloads::LabParams::default()
            },
            ..SystemConfig::default()
        });
        sys.run(SimDuration::from_days(2));
        let mut store = UnifiedStore::new(&mut sys);
        let r = store.query(StoreQuery::Events {
            from: SimTime::ZERO,
            to: SimTime::from_days(2),
        });
        assert!(!r.events.is_empty(), "no events over two days at 10/day");
        assert!(r.events.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn events_query_prunes_empty_windows_via_range_index() {
        let mut sys = PrestoSystem::new(SystemConfig {
            proxies: 2,
            sensors_per_proxy: 3,
            lab: presto_workloads::LabParams {
                events_per_day: 10.0,
                ..presto_workloads::LabParams::default()
            },
            ..SystemConfig::default()
        });
        sys.run(SimDuration::from_days(1));
        let mut store = UnifiedStore::new(&mut sys);
        // A window far past every archive overlaps no proxy: zero
        // per-proxy visits beyond the index routing itself.
        let r = store.query(StoreQuery::Events {
            from: SimTime::from_days(40),
            to: SimTime::from_days(41),
        });
        assert!(r.events.is_empty());
        // A covered window still reports every event.
        let r = store.query(StoreQuery::Events {
            from: SimTime::ZERO,
            to: SimTime::from_days(1),
        });
        assert!(!r.events.is_empty(), "no events over a day at 10/day");
        assert!(r.events.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn events_query_includes_unarchived_cached_events() {
        use presto_sensor::{UplinkMsg, UplinkPayload};
        let mut sys = running_system(1);
        // An event cached at proxy 1 with no archive backing (as when a
        // sensor's append fails but its push succeeds) at an instant no
        // archive span covers: the span union must still visit proxy 1.
        sys.proxies[1].on_uplink(&UplinkMsg {
            sensor: 4,
            sent_at: SimTime::from_days(30),
            wire_bytes: 15,
            payload: UplinkPayload::Event {
                event_type: 9,
                data: Vec::new().into(),
            },
        });
        let mut store = UnifiedStore::new(&mut sys);
        let r = store.query(StoreQuery::Events {
            from: SimTime::from_days(29),
            to: SimTime::from_days(31),
        });
        assert_eq!(r.events.len(), 1, "unarchived cached event was pruned");
        assert_eq!(r.events[0].2, 9);
    }

    #[test]
    fn routing_hops_are_reported() {
        let mut sys = running_system(1);
        let mut store = UnifiedStore::new(&mut sys);
        let r = store.query(StoreQuery::Now {
            sensor: 5,
            tolerance: 1.0,
        });
        // 2 proxies: at most a couple of hops, and latency includes them.
        assert!(r.index_hops <= 4);
    }

    #[test]
    fn aggregate_query_returns_a_scalar() {
        let mut sys = running_system(1);
        let mut store = UnifiedStore::new(&mut sys);
        let r = store.query(StoreQuery::Aggregate {
            sensor: 2,
            from: SimTime::from_hours(8),
            to: SimTime::from_hours(12),
            op: presto_sensor::AggregateOp::Mean,
        });
        assert_ne!(r.source, presto_proxy::AnswerSource::Failed);
        let v = r.value.expect("aggregate carries a value");
        assert!((0.0..45.0).contains(&v), "implausible mean {v}");
        assert!(r.series.is_empty());
    }
}
