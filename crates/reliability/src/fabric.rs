//! The lossy, delayed message fabric between sensors and their proxy.
//!
//! Before this layer existed, every MAC-delivered uplink reached the
//! proxy by direct method call that could not fail, so the loss models
//! in `presto-net` never shaped what the proxy actually saw. The fabric
//! interposes an end-to-end channel per sensor:
//!
//! * each offered message gets a **sequence number** and enters an
//!   unacked window;
//! * the channel samples a [`LossProcess`] per message (the multi-hop
//!   path beyond the first MAC hop — blacked out entirely during an
//!   injected outage);
//! * surviving messages are **delivered later**, at `offer time +
//!   base delay + per-byte serialization delay`, through a
//!   deterministic time-ordered queue;
//! * delivery triggers an **ack** over the (also lossy) reverse
//!   channel; unacked messages are **retransmitted** after a timeout,
//!   charging the sensor's energy ledger per attempt from a bounded
//!   **retry budget** — when the budget or retry count runs out the
//!   message is dropped for good and the loss surfaces as a sequence
//!   gap for [`crate::recovery`] to repair from the archive.
//!
//! Lost acks cause duplicate deliveries (at-least-once semantics); the
//! receiver side deduplicates by sequence number via
//! [`crate::recovery::GapTracker`].

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use presto_net::{FrameFormat, LinkModel, LossProcess, Mac, RadioModel};
use presto_sensor::UplinkMsg;
use presto_sim::{SimDuration, SimRng, SimTime};

/// Fabric parameters.
#[derive(Clone, Debug)]
pub struct FabricConfig {
    /// End-to-end uplink message loss (beyond MAC-level frame loss).
    pub up_loss: LossProcess,
    /// Ack-path loss.
    pub down_loss: LossProcess,
    /// Fixed propagation + queueing delay per delivered message.
    pub base_delay: SimDuration,
    /// Serialization delay per wire byte.
    pub per_byte_delay: SimDuration,
    /// How long a message may sit unacked before retransmission.
    pub retransmit_timeout: SimDuration,
    /// Retransmissions allowed per message after the first attempt.
    pub max_retransmits: u32,
    /// Per-sensor lifetime energy budget for retransmissions, joules.
    /// Retrying into a dead link would otherwise burn the battery the
    /// silent-sensor architecture exists to save.
    pub retry_budget_j: f64,
    /// Radio model used to price retransmission attempts.
    pub radio: RadioModel,
    /// Frame format used to price retransmission attempts.
    pub frame: FrameFormat,
    /// RNG seed for the channel loss streams.
    pub seed: u64,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            up_loss: LossProcess::Perfect,
            down_loss: LossProcess::Perfect,
            base_delay: SimDuration::from_millis(20),
            per_byte_delay: SimDuration::from_micros(400),
            retransmit_timeout: SimDuration::from_secs(10),
            max_retransmits: 4,
            retry_budget_j: 20.0,
            radio: RadioModel::mica2(),
            frame: FrameFormat::tinyos_mica2(),
            seed: 0x0F_AB,
        }
    }
}

/// An uplink message with its fabric sequence number.
#[derive(Clone, Debug)]
pub struct SequencedUplink {
    /// Per-sensor sequence number (0-based, gap-free at the sender).
    pub seq: u64,
    /// The message.
    pub msg: UplinkMsg,
}

/// Fabric counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Messages offered by sensors.
    pub offered: u64,
    /// Deliveries handed to the proxy (duplicates included).
    pub delivered: u64,
    /// Transmission attempts swallowed by the channel.
    pub lost_in_channel: u64,
    /// Retransmission attempts.
    pub retransmits: u64,
    /// Acks lost on the reverse path (each causes a duplicate later).
    pub acks_lost: u64,
    /// Messages abandoned after exhausting retransmits.
    pub dropped_retries: u64,
    /// Messages abandoned because the retry energy budget ran out.
    pub dropped_budget: u64,
    /// Messages discarded because the link was down (blackout/crash).
    pub blocked_link_down: u64,
}

presto_telemetry::observe_counters!(FabricStats {
    offered,
    delivered,
    lost_in_channel,
    retransmits,
    acks_lost,
    dropped_retries,
    dropped_budget,
    blocked_link_down,
});

impl FabricStats {
    /// Accumulates another fabric's counters (fleet aggregation).
    pub fn merge(&mut self, other: &FabricStats) {
        self.offered += other.offered;
        self.delivered += other.delivered;
        self.lost_in_channel += other.lost_in_channel;
        self.retransmits += other.retransmits;
        self.acks_lost += other.acks_lost;
        self.dropped_retries += other.dropped_retries;
        self.dropped_budget += other.dropped_budget;
        self.blocked_link_down += other.blocked_link_down;
    }
}

struct Pending {
    seq: u64,
    msg: UplinkMsg,
    last_attempt: SimTime,
    attempts: u32,
}

struct Channel {
    up: LinkModel,
    down: LinkModel,
    /// Driver-maintained gate: false during blackouts or while the
    /// sensor is crashed.
    link_up: bool,
    next_seq: u64,
    unacked: VecDeque<Pending>,
    retry_spent_j: f64,
}

struct InFlight {
    deliver_at: SimTime,
    order: u64,
    sensor: usize,
    seq: u64,
}

impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.order == other.order
    }
}
impl Eq for InFlight {}
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.deliver_at
            .cmp(&other.deliver_at)
            .then_with(|| self.order.cmp(&other.order))
    }
}

/// The per-deployment message fabric.
pub struct Fabric {
    config: FabricConfig,
    channels: Vec<Channel>,
    in_flight: BinaryHeap<Reverse<InFlight>>,
    next_order: u64,
    retx_mac: Mac,
    stats: FabricStats,
}

impl Fabric {
    /// Creates a fabric with one channel per sensor.
    pub fn new(config: FabricConfig, sensors: usize) -> Self {
        Self::new_with_losses(config, sensors, |_| None)
    }

    /// Creates a fabric whose per-sensor loss processes may be
    /// overridden — the hook correlated-loss deployments use to hand
    /// every channel near one proxy a clone of the same
    /// [`presto_net::SharedLossState`]. Returning `None` keeps the
    /// config's processes for that sensor.
    pub fn new_with_losses(
        config: FabricConfig,
        sensors: usize,
        mut losses: impl FnMut(usize) -> Option<(LossProcess, LossProcess)>,
    ) -> Self {
        let root = SimRng::new(config.seed);
        let channels = (0..sensors)
            .map(|i| {
                let (up_loss, down_loss) = losses(i)
                    .unwrap_or_else(|| (config.up_loss.clone(), config.down_loss.clone()));
                Channel {
                    up: LinkModel::new(up_loss, root.split(&format!("fab-up-{i}"))),
                    down: LinkModel::new(down_loss, root.split(&format!("fab-down-{i}"))),
                    link_up: true,
                    next_seq: 0,
                    unacked: VecDeque::new(),
                    retry_spent_j: 0.0,
                }
            })
            .collect();
        let retx_mac = Mac::uplink(config.radio.clone(), config.frame.clone());
        Fabric {
            channels,
            in_flight: BinaryHeap::new(),
            next_order: 0,
            retx_mac,
            config,
            stats: FabricStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> FabricStats {
        self.stats
    }

    /// Number of messages currently awaiting ack across all channels.
    pub fn unacked_total(&self) -> usize {
        self.channels.iter().map(|c| c.unacked.len()).sum()
    }

    /// Gates one sensor's channel (blackout or crash). While down,
    /// every attempt dies in the channel and no delivery or ack occurs.
    pub fn set_link_up(&mut self, sensor: usize, up: bool) {
        self.channels[sensor].link_up = up;
    }

    /// True when the sensor's channel is currently gated up.
    pub fn link_up(&self, sensor: usize) -> bool {
        self.channels[sensor].link_up
    }

    /// Drops a sensor's pending retransmissions (RAM lost on crash).
    /// Their sequence numbers become a permanent gap — which is the
    /// point: recovery replays them from the flash archive instead.
    pub fn clear_pending(&mut self, sensor: usize) {
        self.channels[sensor].unacked.clear();
    }

    /// Accepts a MAC-delivered uplink from `sensor` at time `t`,
    /// assigning it the next sequence number and attempting first
    /// transmission. Returns the assigned sequence number.
    pub fn offer(&mut self, t: SimTime, sensor: usize, msg: UplinkMsg) -> u64 {
        self.stats.offered += 1;
        let ch = &mut self.channels[sensor];
        let seq = ch.next_seq;
        ch.next_seq += 1;
        let mut pending = Pending {
            seq,
            msg,
            last_attempt: t,
            attempts: 1,
        };
        Self::attempt(
            &mut self.stats,
            &mut self.in_flight,
            &mut self.next_order,
            &self.config,
            sensor,
            ch,
            &mut pending,
            t,
        );
        ch.unacked.push_back(pending);
        seq
    }

    /// One transmission attempt of a pending message through the
    /// channel. On survival the message is scheduled for delivery.
    #[allow(clippy::too_many_arguments)]
    fn attempt(
        stats: &mut FabricStats,
        in_flight: &mut BinaryHeap<Reverse<InFlight>>,
        next_order: &mut u64,
        config: &FabricConfig,
        sensor: usize,
        ch: &mut Channel,
        pending: &mut Pending,
        t: SimTime,
    ) {
        if !ch.link_up {
            stats.blocked_link_down += 1;
            return;
        }
        if !ch.up.deliver() {
            stats.lost_in_channel += 1;
            return;
        }
        let deliver_at =
            t + config.base_delay + config.per_byte_delay * pending.msg.wire_bytes as u64;
        let order = *next_order;
        *next_order += 1;
        in_flight.push(Reverse(InFlight {
            deliver_at,
            order,
            sensor,
            seq: pending.seq,
        }));
    }

    /// Hands over every delivery due by `t`, in delivery-time order.
    /// Each delivery samples the ack path: an acked message leaves the
    /// sender's unacked window; a lost ack leaves it there, producing a
    /// duplicate delivery after the next retransmission.
    pub fn poll(&mut self, t: SimTime) -> Vec<(usize, SequencedUplink)> {
        let mut out = Vec::new();
        while let Some(Reverse(head)) = self.in_flight.peek() {
            if head.deliver_at > t {
                break;
            }
            let Some(Reverse(flight)) = self.in_flight.pop() else {
                break;
            };
            let ch = &mut self.channels[flight.sensor];
            let Some(pos) = ch.unacked.iter().position(|p| p.seq == flight.seq) else {
                // Sender state is gone (crash cleared it, or an earlier
                // duplicate was acked and retired): deliver a copy only
                // if we still can — without sender state we cannot, so
                // the flight is dropped. Duplicates of *retired*
                // messages are rare (ack raced the retransmit) and
                // harmless to drop.
                continue;
            };
            self.stats.delivered += 1;
            let msg = ch.unacked[pos].msg.clone();
            // Ack over the reverse channel.
            if ch.link_up && ch.down.deliver() {
                ch.unacked.remove(pos);
            } else {
                self.stats.acks_lost += 1;
            }
            out.push((
                flight.sensor,
                SequencedUplink {
                    seq: flight.seq,
                    msg,
                },
            ));
        }
        out
    }

    /// Runs the retransmission machinery at time `t`. `charge` is called
    /// with `(sensor, joules)` for every retransmission attempt so the
    /// driver can bill the sensor's energy ledger (radio transmit).
    pub fn tick<F: FnMut(usize, f64)>(&mut self, t: SimTime, mut charge: F) {
        for sensor in 0..self.channels.len() {
            let ch = &mut self.channels[sensor];
            let mut i = 0;
            while i < ch.unacked.len() {
                let due = t - ch.unacked[i].last_attempt >= self.config.retransmit_timeout;
                if !due {
                    i += 1;
                    continue;
                }
                if ch.unacked[i].attempts > self.config.max_retransmits {
                    self.stats.dropped_retries += 1;
                    ch.unacked.remove(i);
                    continue;
                }
                let cost = self.retx_mac.expected_send_energy(ch.unacked[i].msg.wire_bytes);
                if ch.retry_spent_j + cost > self.config.retry_budget_j {
                    self.stats.dropped_budget += 1;
                    ch.unacked.remove(i);
                    continue;
                }
                ch.retry_spent_j += cost;
                charge(sensor, cost);
                self.stats.retransmits += 1;
                let Some(mut pending) = ch.unacked.remove(i) else {
                    continue;
                };
                pending.attempts += 1;
                pending.last_attempt = t;
                Self::attempt(
                    &mut self.stats,
                    &mut self.in_flight,
                    &mut self.next_order,
                    &self.config,
                    sensor,
                    ch,
                    &mut pending,
                    t,
                );
                ch.unacked.insert(i, pending);
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_sensor::UplinkPayload;

    fn msg(t: SimTime, v: f64) -> UplinkMsg {
        UplinkMsg {
            sensor: 0,
            sent_at: t,
            wire_bytes: 15,
            payload: UplinkPayload::Value { value: v },
        }
    }

    fn perfect_fabric() -> Fabric {
        Fabric::new(FabricConfig::default(), 2)
    }

    #[test]
    fn perfect_channel_delivers_in_order_with_delay() {
        let mut f = perfect_fabric();
        let t0 = SimTime::from_secs(10);
        for i in 0..5u64 {
            let s = f.offer(t0 + SimDuration::from_millis(i), 0, msg(t0, i as f64));
            assert_eq!(s, i);
        }
        // Nothing due immediately.
        assert!(f.poll(t0).is_empty());
        let got = f.poll(t0 + SimDuration::from_secs(1));
        assert_eq!(got.len(), 5);
        let seqs: Vec<u64> = got.iter().map(|(_, m)| m.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        // All acked: nothing pending.
        assert_eq!(f.unacked_total(), 0);
        assert_eq!(f.stats().delivered, 5);
    }

    #[test]
    fn lossy_channel_recovers_via_retransmit() {
        let cfg = FabricConfig {
            up_loss: LossProcess::Bernoulli(0.5),
            retransmit_timeout: SimDuration::from_secs(1),
            max_retransmits: 20,
            ..FabricConfig::default()
        };
        let mut f = Fabric::new(cfg, 1);
        let t0 = SimTime::from_secs(1);
        for i in 0..50u64 {
            f.offer(t0 + SimDuration::from_millis(10 * i), 0, msg(t0, i as f64));
        }
        let mut seen = std::collections::BTreeSet::new();
        let mut charged = 0.0;
        for k in 1..200u64 {
            let t = t0 + SimDuration::from_secs(k);
            for (_, d) in f.poll(t) {
                seen.insert(d.seq);
            }
            f.tick(t, |_, j| charged += j);
            if seen.len() == 50 {
                break;
            }
        }
        assert_eq!(seen.len(), 50, "all messages eventually delivered");
        assert!(f.stats().retransmits > 0);
        assert!(charged > 0.0, "retransmissions must cost energy");
    }

    #[test]
    fn lost_acks_cause_duplicates_not_loss() {
        let cfg = FabricConfig {
            down_loss: LossProcess::Bernoulli(1.0), // every ack dies
            retransmit_timeout: SimDuration::from_secs(1),
            max_retransmits: 3,
            ..FabricConfig::default()
        };
        let mut f = Fabric::new(cfg, 1);
        let t0 = SimTime::from_secs(1);
        f.offer(t0, 0, msg(t0, 1.0));
        let mut deliveries = 0;
        for k in 1..20u64 {
            deliveries += f.poll(t0 + SimDuration::from_secs(k)).len();
            f.tick(t0 + SimDuration::from_secs(k), |_, _| {});
        }
        assert!(deliveries > 1, "duplicates expected with dead ack path");
        assert!(f.stats().acks_lost as usize >= deliveries);
        // Eventually abandoned after max retransmits.
        assert_eq!(f.unacked_total(), 0);
    }

    #[test]
    fn dead_link_drops_after_retry_budget_or_count() {
        let cfg = FabricConfig {
            up_loss: LossProcess::Bernoulli(1.0),
            retransmit_timeout: SimDuration::from_secs(1),
            max_retransmits: 1000,
            retry_budget_j: 0.005, // a few frames' worth
            ..FabricConfig::default()
        };
        let mut f = Fabric::new(cfg, 1);
        let t0 = SimTime::from_secs(1);
        f.offer(t0, 0, msg(t0, 1.0));
        for k in 1..50u64 {
            f.tick(t0 + SimDuration::from_secs(k), |_, _| {});
        }
        assert_eq!(f.unacked_total(), 0, "budget must bound retries");
        assert_eq!(f.stats().dropped_budget, 1);
        assert_eq!(f.stats().delivered, 0);
    }

    #[test]
    fn link_gate_blocks_and_reopens() {
        let mut f = perfect_fabric();
        let t0 = SimTime::from_secs(1);
        f.set_link_up(0, false);
        f.offer(t0, 0, msg(t0, 1.0));
        assert!(f.poll(t0 + SimDuration::from_secs(5)).is_empty());
        assert_eq!(f.stats().blocked_link_down, 1);
        // Reopen: the pending message retransmits through.
        f.set_link_up(0, true);
        f.tick(t0 + SimDuration::from_secs(30), |_, _| {});
        let got = f.poll(t0 + SimDuration::from_secs(31));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1.seq, 0);
    }

    #[test]
    fn clear_pending_leaves_a_sequence_gap() {
        let mut f = perfect_fabric();
        let t0 = SimTime::from_secs(1);
        f.set_link_up(0, false);
        f.offer(t0, 0, msg(t0, 1.0)); // seq 0, stuck
        f.clear_pending(0);
        f.set_link_up(0, true);
        let s = f.offer(t0 + SimDuration::from_secs(5), 0, msg(t0, 2.0));
        assert_eq!(s, 1, "sequence numbering survives the crash");
        let got = f.poll(t0 + SimDuration::from_secs(6));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1.seq, 1, "seq 0 is a permanent gap");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let cfg = FabricConfig {
                up_loss: LossProcess::Bernoulli(0.4),
                seed,
                ..FabricConfig::default()
            };
            let mut f = Fabric::new(cfg, 1);
            let t0 = SimTime::from_secs(1);
            for i in 0..64u64 {
                f.offer(t0 + SimDuration::from_secs(i), 0, msg(t0, i as f64));
            }
            let got = f.poll(t0 + SimDuration::from_secs(100));
            got.iter().map(|(_, d)| d.seq).collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }
}
