//! The proxy→sensor half of the message fabric.
//!
//! Until this module existed, only sensor→proxy traffic rode the lossy
//! [`crate::fabric`]; every proxy-initiated interaction — archive pulls,
//! aggregate requests, model pushes, retunes, recovery replays — crossed
//! by an infallible direct call, so the entire pull path had never been
//! exercised under loss. The [`DownlinkChannel`] closes that asymmetry:
//! one sequenced, ack/retransmit channel per sensor, mirroring the
//! uplink machinery.
//!
//! * every request gets a **sequence number**; retransmissions reuse it,
//!   so the sensor can deduplicate (see
//!   [`presto_sensor::SensorNode::handle_sequenced_downlink`]) — a model
//!   update whose ack died is *not* applied twice, and a pull whose
//!   reply died is re-sent from the sensor's reply cache instead of
//!   re-read from flash;
//! * the request pays the first-hop MAC (wake-up preamble, frame ARQ,
//!   energy billed to the **proxy-side ledger**) and then samples an
//!   end-to-end [`LossProcess`] for the multi-hop path, exactly like the
//!   uplink fabric — including [`LossProcess::Correlated`] shared-fading
//!   states, so a burst near the proxy degrades every sensor's pulls at
//!   once;
//! * replies and acks ride the (also lossy) reverse path; a lost reply
//!   triggers a timed-out retransmission, each timeout surfacing in the
//!   RPC's latency;
//! * retransmissions beyond the first attempt draw from an
//!   energy-charged **retry budget** that refills slowly (a token
//!   bucket): a proxy hammering a dead path exhausts it and the RPC
//!   fails honestly instead of retrying forever;
//! * a **pending-RPC table** tracks outstanding `query_id`s and matches
//!   `PullReply`/`AggregateReply` uplinks to them, consuming each reply
//!   exactly once. Under the current synchronous driver an entry lives
//!   only within its own `rpc` call (sensor-side dedup already pins a
//!   retransmitted request's reply to the same query id), so the
//!   mismatch path is a defensive guard; the table is the structural
//!   hook for the queued asynchronous query pipeline on the roadmap,
//!   where replies genuinely arrive out of call order.
//!
//! The channel offers two driving modes over the same attempt machinery:
//!
//! * **synchronous** — [`DownlinkChannel::rpc`] walks its own
//!   attempt/timeout schedule inside one call and returns the
//!   accumulated latency (the original mode, kept as the reference
//!   implementation for the pipeline-equivalence tests);
//! * **asynchronous** — [`DownlinkChannel::submit_async`] enqueues a
//!   reply-bearing RPC into a genuinely multi-outstanding pending-RPC
//!   table, and [`DownlinkChannel::pump_async`] — driven once per epoch
//!   by the proxy's query pipeline — issues or retransmits every due
//!   attempt (metered by a caller-held per-epoch attempt budget and the
//!   energy retry budget), matching arriving `PullReply`/
//!   `AggregateReply` messages back to their queries. Timeouts are real
//!   simulated time between pumps, so one proxy overlaps many in-flight
//!   pulls and downlink loss shows up as latency percentiles instead of
//!   serialized stalls.

use std::collections::BTreeSet;

use presto_net::{LinkModel, LossProcess, Mac};
use presto_sensor::{DownlinkMsg, SensorNode, UplinkMsg, UplinkPayload};
use presto_sim::{EnergyCategory, EnergyLedger, SimDuration, SimRng, SimTime};

/// Downlink channel parameters.
#[derive(Clone, Debug)]
pub struct DownlinkConfig {
    /// End-to-end request loss beyond the first MAC hop.
    pub request_loss: LossProcess,
    /// Reply/ack-path loss beyond the sensor's first hop.
    pub reply_loss: LossProcess,
    /// Fixed propagation + queueing delay per delivered message.
    pub base_delay: SimDuration,
    /// Serialization delay per wire byte.
    pub per_byte_delay: SimDuration,
    /// How long the proxy waits on a request before retransmitting.
    pub rpc_timeout: SimDuration,
    /// Retransmissions allowed per RPC after the first attempt.
    pub max_retransmits: u32,
    /// Retry-budget capacity, joules. Retransmissions beyond each RPC's
    /// first attempt draw from it; the proxy is tethered, but unbounded
    /// retries into a dead path would stall the query pipeline and
    /// monopolize the shared medium, so the budget is real.
    pub retry_budget_j: f64,
    /// Budget refill rate, joules per hour (token bucket).
    pub budget_refill_j_per_hour: f64,
    /// RNG seed for the channel loss streams.
    pub seed: u64,
}

impl Default for DownlinkConfig {
    fn default() -> Self {
        DownlinkConfig {
            request_loss: LossProcess::Perfect,
            reply_loss: LossProcess::Perfect,
            base_delay: SimDuration::from_millis(20),
            per_byte_delay: SimDuration::from_micros(400),
            rpc_timeout: SimDuration::from_secs(5),
            // Matches the pre-fabric pull retry count, so a Perfect
            // channel reproduces the old failure behavior.
            max_retransmits: 2,
            retry_budget_j: 50.0,
            budget_refill_j_per_hour: 20.0,
            seed: 0xD0_FA,
        }
    }
}

/// Downlink channel counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DownlinkStats {
    /// RPCs issued.
    pub rpcs: u64,
    /// RPCs that completed (reply consumed or ack received).
    pub delivered: u64,
    /// Request retransmissions.
    pub retransmits: u64,
    /// Requests swallowed by the channel (first hop or multi-hop).
    pub requests_lost: u64,
    /// Replies or acks lost on the way back (each costs a timeout and
    /// usually produces a duplicate request at the sensor).
    pub replies_lost: u64,
    /// RPCs that failed after exhausting retransmissions.
    pub rpc_failures: u64,
    /// RPCs abandoned because the retry budget ran dry.
    pub dropped_budget: u64,
    /// Attempts blocked because the link was gated down.
    pub blocked_link_down: u64,
    /// Replies that matched no outstanding query id (duplicates or
    /// strays), dropped by the pending-RPC table.
    pub duplicate_replies: u64,
    /// Async RPCs submitted into the pending-RPC table.
    pub async_submitted: u64,
    /// Async RPCs that expired (deadline passed) before completing.
    pub async_expired: u64,
    /// Async attempts deferred because the energy retry budget was dry
    /// (the RPC waits for the bucket to refill instead of dying).
    pub deferred_budget: u64,
    /// High-water mark of simultaneously outstanding async RPCs.
    pub max_in_flight: u64,
}

impl DownlinkStats {
    /// Folds another channel's counters in: everything adds except
    /// `max_in_flight`, which is a per-channel peak and takes the max.
    pub fn merge(&mut self, other: &DownlinkStats) {
        self.rpcs += other.rpcs;
        self.delivered += other.delivered;
        self.retransmits += other.retransmits;
        self.requests_lost += other.requests_lost;
        self.replies_lost += other.replies_lost;
        self.rpc_failures += other.rpc_failures;
        self.dropped_budget += other.dropped_budget;
        self.blocked_link_down += other.blocked_link_down;
        self.duplicate_replies += other.duplicate_replies;
        self.async_submitted += other.async_submitted;
        self.async_expired += other.async_expired;
        self.deferred_budget += other.deferred_budget;
        self.max_in_flight = self.max_in_flight.max(other.max_in_flight);
    }
}

presto_telemetry::observe_counters!(DownlinkStats {
    rpcs,
    delivered,
    retransmits,
    requests_lost,
    replies_lost,
    rpc_failures,
    dropped_budget,
    blocked_link_down,
    duplicate_replies,
    async_submitted,
    async_expired,
    deferred_budget,
} max { max_in_flight });

/// One transmission-scheduling event of an async RPC, logged per query
/// id when [`DownlinkChannel::set_trace_attempts`] is on — the radio-
/// level detail of a query's trace span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttemptEvent {
    /// First transmission of the RPC.
    First,
    /// A timeout-scheduled retransmission.
    Retransmit,
    /// An attempt deferred by the dry retry energy budget.
    Deferred,
}

/// Outcome of one fabric-routed RPC.
#[derive(Clone, Debug)]
pub struct RpcOutcome {
    /// The matched reply, for request kinds that produce one.
    pub reply: Option<UplinkMsg>,
    /// True when the request was applied at the sensor *and* the proxy
    /// learned so (reply or ack made it back).
    pub delivered: bool,
    /// End-to-end latency, including every timeout spent waiting on
    /// lost requests/replies.
    pub latency: SimDuration,
    /// Transmission attempts made (1 = first try succeeded).
    pub attempts: u32,
}

/// A queued asynchronous RPC: one entry of the multi-outstanding
/// pending-RPC table, alive across epoch pumps until its reply arrives,
/// its deadline passes, or it is cancelled.
#[derive(Clone, Debug)]
struct AsyncRpc {
    qid: u64,
    seq: u64,
    msg: DownlinkMsg,
    attempts: u32,
    next_attempt_at: SimTime,
    expires_at: SimTime,
}

/// What one `pump_async` pass observed for an outstanding RPC.
#[derive(Clone, Debug)]
pub enum AsyncRpcEvent {
    /// A reply arrived and was matched through the pending-RPC table.
    Completed {
        /// The RPC's query id.
        query_id: u64,
        /// The matched reply.
        reply: UplinkMsg,
        /// In-flight latency of the winning attempt (MAC + channel
        /// delays); the epochs spent waiting are real simulated time
        /// the caller already observes.
        attempt_latency: SimDuration,
        /// Transmission attempts made over the RPC's lifetime.
        attempts: u32,
    },
    /// The RPC's deadline passed without a matched reply.
    Expired {
        /// The RPC's query id.
        query_id: u64,
        /// Transmission attempts made before giving up.
        attempts: u32,
    },
}

/// Outcome of one transmission attempt (shared by the synchronous RPC
/// loop and the asynchronous pump).
enum Attempt {
    /// Reply-bearing request completed: the matched reply plus the
    /// attempt's in-flight latency.
    Reply(UplinkMsg, SimDuration),
    /// Ack-only request acknowledged.
    Acked(SimDuration),
    /// The attempt died somewhere (link gated, request lost, reply or
    /// ack lost, stray reply); the latency is what was spent on the air
    /// before the proxy started waiting.
    Lost(SimDuration),
}

/// A sequenced, ack/retransmit proxy→sensor channel for one sensor.
pub struct DownlinkChannel {
    config: DownlinkConfig,
    /// First-hop radio link (the old per-sensor downlink `LinkModel`).
    first_hop: LinkModel,
    /// End-to-end request-path loss beyond the first hop.
    request: LinkModel,
    /// Reply/ack-path loss beyond the sensor's first hop.
    reply: LinkModel,
    /// Driver-maintained gate: false during blackouts or while the
    /// sensor is crashed.
    link_up: bool,
    next_seq: u64,
    /// Pending-RPC table: outstanding query ids awaiting a reply.
    outstanding: BTreeSet<u64>,
    /// Queued asynchronous RPCs, in submission order (the pump serves
    /// them oldest-first, so one hot query cannot starve the rest of
    /// the channel).
    async_rpcs: Vec<AsyncRpc>,
    retry_spent_j: f64,
    last_refill: SimTime,
    stats: DownlinkStats,
    /// Opt-in per-RPC attempt tracing: when on, every pump-time
    /// scheduling decision is logged against its query id for the
    /// pipeline tracer to drain. Off (the default) nothing allocates.
    trace_attempts: bool,
    attempt_log: Vec<(u64, AttemptEvent)>,
}

impl DownlinkChannel {
    /// Creates a channel with the given end-to-end config over the given
    /// first-hop link.
    pub fn new(config: DownlinkConfig, first_hop: LinkModel) -> Self {
        let root = SimRng::new(config.seed);
        DownlinkChannel {
            request: LinkModel::new(config.request_loss.clone(), root.split("dl-req")),
            reply: LinkModel::new(config.reply_loss.clone(), root.split("dl-rep")),
            first_hop,
            link_up: true,
            next_seq: 0,
            outstanding: BTreeSet::new(),
            async_rpcs: Vec::new(),
            retry_spent_j: 0.0,
            last_refill: SimTime::ZERO,
            stats: DownlinkStats::default(),
            trace_attempts: false,
            attempt_log: Vec::new(),
            config,
        }
    }

    /// Turns per-RPC attempt logging on or off (idempotent; the
    /// pipeline tracer enables it on the channels it pumps).
    pub fn set_trace_attempts(&mut self, on: bool) {
        self.trace_attempts = on;
        if !on {
            self.attempt_log.clear();
        }
    }

    /// Drains the attempt log recorded since the last call.
    pub fn take_attempt_log(&mut self) -> Vec<(u64, AttemptEvent)> {
        std::mem::take(&mut self.attempt_log)
    }

    /// A lossless channel over a lossless first hop (wired testbeds and
    /// unit tests).
    pub fn perfect() -> Self {
        DownlinkChannel::new(DownlinkConfig::default(), LinkModel::perfect())
    }

    /// Default end-to-end config over the given first-hop link — the
    /// drop-in replacement for call sites that used to pass a bare
    /// `LinkModel`.
    pub fn over(first_hop: LinkModel) -> Self {
        DownlinkChannel::new(DownlinkConfig::default(), first_hop)
    }

    /// Counters.
    pub fn stats(&self) -> DownlinkStats {
        self.stats
    }

    /// Gates the channel (blackout or crash). While down, every attempt
    /// dies in the channel.
    pub fn set_link_up(&mut self, up: bool) {
        self.link_up = up;
    }

    /// True when the channel is currently gated up.
    pub fn link_up(&self) -> bool {
        self.link_up
    }

    /// Outstanding query ids awaiting replies (pending-RPC table size).
    pub fn outstanding_rpcs(&self) -> usize {
        self.outstanding.len()
    }

    /// Remaining retry budget, joules.
    pub fn budget_remaining_j(&self) -> f64 {
        (self.config.retry_budget_j - self.retry_spent_j).max(0.0)
    }

    /// Periodic maintenance, driven by the system tier each epoch:
    /// refills the retransmission token bucket.
    pub fn tick(&mut self, t: SimTime) {
        if t <= self.last_refill {
            return;
        }
        let dt_h = (t - self.last_refill).as_secs_f64() / 3600.0;
        self.retry_spent_j = (self.retry_spent_j - dt_h * self.config.budget_refill_j_per_hour)
            .max(0.0);
        self.last_refill = t;
    }

    /// Runs one fabric-routed RPC: transmits `msg` towards `node` with
    /// retransmission on timeout, deduplicated at the sensor by sequence
    /// number, replies matched through the pending-RPC table. `mac`
    /// prices and charges the first-hop radio (proxy pays transmit and
    /// preamble energy, the sensor pays reception).
    pub fn rpc(
        &mut self,
        t: SimTime,
        msg: &DownlinkMsg,
        node: &mut SensorNode,
        mac: &Mac,
        proxy_ledger: &mut EnergyLedger,
    ) -> RpcOutcome {
        self.tick(t);
        self.stats.rpcs += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        let rpc_qid = request_query_id(msg);
        if let Some(q) = rpc_qid {
            self.outstanding.insert(q);
        }
        let wire = msg.wire_bytes();
        let mut latency = SimDuration::ZERO;
        let mut attempts: u32 = 0;
        let mut outcome = None;

        while attempts <= self.config.max_retransmits {
            if attempts > 0 {
                // Retransmissions are budget-metered: the bucket empties
                // against a dead path and the RPC fails instead of
                // spinning.
                let cost = mac.expected_send_energy(wire);
                if self.retry_spent_j + cost > self.config.retry_budget_j {
                    self.stats.dropped_budget += 1;
                    break;
                }
                self.retry_spent_j += cost;
                self.stats.retransmits += 1;
            }
            attempts += 1;

            match self.attempt_once(t, seq, msg, rpc_qid, latency, wire, node, mac, proxy_ledger) {
                Attempt::Reply(r, l) => {
                    latency += l;
                    self.stats.delivered += 1;
                    outcome = Some(RpcOutcome {
                        reply: Some(r),
                        delivered: true,
                        latency,
                        attempts,
                    });
                    break;
                }
                Attempt::Acked(l) => {
                    latency += l;
                    self.stats.delivered += 1;
                    outcome = Some(RpcOutcome {
                        reply: None,
                        delivered: true,
                        latency,
                        attempts,
                    });
                    break;
                }
                Attempt::Lost(l) => {
                    // In the synchronous mode the proxy blocks through
                    // the timeout, so it lands in the answer's latency.
                    latency += l + self.config.rpc_timeout;
                    continue;
                }
            }
        }
        if let Some(q) = rpc_qid {
            self.outstanding.remove(&q);
        }
        outcome.unwrap_or_else(|| {
            self.stats.rpc_failures += 1;
            RpcOutcome {
                reply: None,
                delivered: false,
                latency,
                attempts,
            }
        })
    }

    /// One transmission attempt of a sequenced request: first-hop MAC,
    /// end-to-end request loss, sensor handling, reply/ack-path loss,
    /// and the pending-RPC match. `elapsed` is the latency already
    /// accumulated before this attempt starts (the synchronous loop's
    /// timeouts; zero under the async pump, where waiting is real
    /// simulated time).
    #[allow(clippy::too_many_arguments)]
    fn attempt_once(
        &mut self,
        t: SimTime,
        seq: u64,
        msg: &DownlinkMsg,
        rpc_qid: Option<u64>,
        elapsed: SimDuration,
        wire: usize,
        node: &mut SensorNode,
        mac: &Mac,
        proxy_ledger: &mut EnergyLedger,
    ) -> Attempt {
        let expects_reply = rpc_qid.is_some();
        if !self.link_up {
            // The proxy cannot know the sensor is crashed or blacked
            // out before transmitting: it pays the wake-up preamble
            // and frames into the void, exactly as on real hardware.
            // (The crashed sensor's radio is off — it pays nothing.)
            self.stats.blocked_link_down += 1;
            proxy_ledger.charge(EnergyCategory::RadioTx, mac.expected_send_energy(wire));
            return Attempt::Lost(SimDuration::ZERO);
        }
        let mut latency = SimDuration::ZERO;
        let mac_out = mac.send(wire, &mut self.first_hop, proxy_ledger, Some(node.ledger_mut()));
        latency += mac_out.latency;
        if !mac_out.delivered || !self.request.deliver() {
            self.stats.requests_lost += 1;
            return Attempt::Lost(latency);
        }
        latency += self.config.base_delay + self.config.per_byte_delay * wire as u64;
        let arrive = t + elapsed + latency;
        let reply = node.handle_sequenced_downlink(arrive, seq, msg, Some(proxy_ledger));
        match reply {
            Some(r) => {
                if !self.link_up || !self.reply.deliver() {
                    self.stats.replies_lost += 1;
                    return Attempt::Lost(latency);
                }
                latency +=
                    self.config.base_delay + self.config.per_byte_delay * r.wire_bytes as u64;
                // Pending-RPC match: each query id is consumed once.
                let consumed = match (rpc_qid, reply_query_id(&r)) {
                    (Some(want), Some(got)) if want == got => self.outstanding.remove(&want),
                    (None, _) => true,
                    _ => false,
                };
                if !consumed {
                    self.stats.duplicate_replies += 1;
                    return Attempt::Lost(latency);
                }
                Attempt::Reply(r, latency)
            }
            None if expects_reply => {
                // The reply died at the sensor's own MAC; the request
                // was applied, but the proxy learns nothing — retry,
                // and the sensor's dedup serves it from cache.
                self.stats.replies_lost += 1;
                Attempt::Lost(latency)
            }
            None => {
                // Ack-only request (model update, retune): a tiny
                // link-layer ack rides the reply path.
                if !self.reply.deliver() {
                    self.stats.replies_lost += 1;
                    return Attempt::Lost(latency);
                }
                latency += self.config.base_delay;
                Attempt::Acked(latency)
            }
        }
    }

    /// Enqueues a reply-bearing RPC (pull or aggregate request) into
    /// the multi-outstanding pending-RPC table without transmitting
    /// anything yet; the next [`DownlinkChannel::pump_async`] issues the
    /// first attempt. Returns the request's query id. The RPC stays
    /// outstanding across pumps until its reply is matched, `expires_at`
    /// passes, or it is cancelled.
    ///
    /// Panics if `msg` carries no query id (ack-only requests have no
    /// reply to match and keep using the synchronous path).
    pub fn submit_async(&mut self, t: SimTime, msg: DownlinkMsg, expires_at: SimTime) -> u64 {
        // presto-lint: allow(panic, documented contract: ack-only RPCs must use the sync path; a reply-less async RPC is a driver bug, not a lossy-path event)
        let qid = request_query_id(&msg).expect("async RPCs must expect a reply");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stats.rpcs += 1;
        self.stats.async_submitted += 1;
        self.outstanding.insert(qid);
        self.async_rpcs.push(AsyncRpc {
            qid,
            seq,
            msg,
            attempts: 0,
            next_attempt_at: t,
            expires_at,
        });
        self.stats.max_in_flight = self.stats.max_in_flight.max(self.async_rpcs.len() as u64);
        qid
    }

    /// Drives every outstanding async RPC that is due: expires the ones
    /// past their deadline, then issues or retransmits attempts
    /// oldest-first while `attempt_budget` lasts (the caller spreads one
    /// budget across its sensors for fairness). A lost attempt schedules
    /// its retransmission one `rpc_timeout` out; an attempt the energy
    /// retry budget cannot afford is deferred, not dropped — the RPC
    /// waits for the bucket to refill or its deadline, whichever first.
    pub fn pump_async(
        &mut self,
        t: SimTime,
        node: &mut SensorNode,
        mac: &Mac,
        proxy_ledger: &mut EnergyLedger,
        attempt_budget: &mut u32,
    ) -> Vec<AsyncRpcEvent> {
        self.tick(t);
        let mut events = Vec::new();
        let mut i = 0;
        while i < self.async_rpcs.len() {
            if t >= self.async_rpcs[i].expires_at {
                let rpc = self.async_rpcs.remove(i);
                self.outstanding.remove(&rpc.qid);
                self.stats.async_expired += 1;
                self.stats.rpc_failures += 1;
                events.push(AsyncRpcEvent::Expired {
                    query_id: rpc.qid,
                    attempts: rpc.attempts,
                });
                continue;
            }
            if self.async_rpcs[i].next_attempt_at > t || *attempt_budget == 0 {
                i += 1;
                continue;
            }
            let wire = self.async_rpcs[i].msg.wire_bytes();
            if self.async_rpcs[i].attempts > 0 {
                let cost = mac.expected_send_energy(wire);
                if self.retry_spent_j + cost > self.config.retry_budget_j {
                    self.stats.deferred_budget += 1;
                    if self.trace_attempts {
                        self.attempt_log
                            .push((self.async_rpcs[i].qid, AttemptEvent::Deferred));
                    }
                    self.async_rpcs[i].next_attempt_at = t + self.config.rpc_timeout;
                    i += 1;
                    continue;
                }
                self.retry_spent_j += cost;
                self.stats.retransmits += 1;
            }
            *attempt_budget -= 1;
            self.async_rpcs[i].attempts += 1;
            if self.trace_attempts {
                self.attempt_log.push((
                    self.async_rpcs[i].qid,
                    if self.async_rpcs[i].attempts == 1 {
                        AttemptEvent::First
                    } else {
                        AttemptEvent::Retransmit
                    },
                ));
            }
            let AsyncRpc {
                qid,
                seq,
                attempts,
                ..
            } = self.async_rpcs[i];
            let msg = self.async_rpcs[i].msg.clone();
            match self.attempt_once(
                t,
                seq,
                &msg,
                Some(qid),
                SimDuration::ZERO,
                wire,
                node,
                mac,
                proxy_ledger,
            ) {
                Attempt::Reply(r, l) => {
                    self.async_rpcs.remove(i);
                    self.stats.delivered += 1;
                    events.push(AsyncRpcEvent::Completed {
                        query_id: qid,
                        reply: r,
                        attempt_latency: l,
                        attempts,
                    });
                }
                // Unreachable: submit_async only admits reply-bearing
                // requests. Treat as lost if it ever happens.
                Attempt::Acked(_) | Attempt::Lost(_) => {
                    self.async_rpcs[i].next_attempt_at = t + self.config.rpc_timeout;
                    i += 1;
                }
            }
        }
        events
    }

    /// Re-bases the channel's request sequence numbers into a disjoint
    /// namespace. Sensor-side duplicate filtering keys on the bare
    /// sequence number across *every* channel that talks to the sensor,
    /// so two proxies driving independent channels towards one sensor
    /// (a shed query served by a peer while the owner keeps pulling)
    /// must draw their sequences from disjoint ranges or a fresh
    /// request could be mistaken for a retransmission of another
    /// proxy's. Only moves forward; call before first use.
    pub fn set_seq_namespace(&mut self, base: u64) {
        self.next_seq = self.next_seq.max(base);
    }

    /// Wipes the proxy-side half of the channel after a proxy crash:
    /// the pending-RPC table and queued async attempts are proxy RAM
    /// and die with it. The sensor-side association (sequence space,
    /// dedup window) is untouched — a successor proxy resuming the
    /// channel keeps sequencing from where the dead one stopped.
    /// Returns how many outstanding async RPCs were dropped.
    pub fn reset_proxy_state(&mut self) -> usize {
        let dropped = self.async_rpcs.len();
        self.async_rpcs.clear();
        self.outstanding.clear();
        self.attempt_log.clear();
        dropped
    }

    /// Cancels an outstanding async RPC (e.g. its last attached query
    /// expired at the pipeline tier), dropping its pending-table entry.
    /// Returns true when the RPC existed.
    pub fn cancel_async(&mut self, query_id: u64) -> bool {
        let before = self.async_rpcs.len();
        self.async_rpcs.retain(|r| r.qid != query_id);
        if self.async_rpcs.len() != before {
            self.outstanding.remove(&query_id);
            true
        } else {
            false
        }
    }

    /// Outstanding async RPCs currently in flight on this channel.
    pub fn async_in_flight(&self) -> usize {
        self.async_rpcs.len()
    }
}

/// Query id carried by a request, for kinds that expect a reply.
fn request_query_id(msg: &DownlinkMsg) -> Option<u64> {
    match msg {
        DownlinkMsg::PullRequest { query_id, .. }
        | DownlinkMsg::AggregateRequest { query_id, .. } => Some(*query_id),
        DownlinkMsg::ModelUpdate { .. } | DownlinkMsg::Retune { .. } => None,
    }
}

/// Query id carried by a reply payload.
fn reply_query_id(msg: &UplinkMsg) -> Option<u64> {
    match &msg.payload {
        UplinkPayload::PullReply { query_id, .. }
        | UplinkPayload::AggregateReply { query_id, .. } => Some(*query_id),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_net::{FrameFormat, RadioModel};
    use presto_sensor::{PushPolicy, SensorConfig};

    fn mac() -> Mac {
        Mac::downlink(
            RadioModel::mica2(),
            FrameFormat::tinyos_mica2(),
            SimDuration::from_secs(1),
        )
    }

    fn archived_node() -> SensorNode {
        let mut n = SensorNode::new(
            0,
            SensorConfig {
                push: PushPolicy::Silent,
                ..SensorConfig::default()
            },
            LinkModel::perfect(),
        );
        for i in 0..200u64 {
            n.on_sample(SimTime::from_secs(31 * i), 20.0 + (i % 7) as f64 * 0.1, None);
        }
        n
    }

    fn pull(qid: u64) -> DownlinkMsg {
        DownlinkMsg::PullRequest {
            query_id: qid,
            from: SimTime::ZERO,
            to: SimTime::from_secs(31 * 100),
            tolerance: 0.3,
        }
    }

    #[test]
    fn perfect_channel_completes_in_one_attempt() {
        let mut ch = DownlinkChannel::perfect();
        let mut node = archived_node();
        let mut ledger = EnergyLedger::new();
        let t = SimTime::from_hours(2);
        let out = ch.rpc(t, &pull(1), &mut node, &mac(), &mut ledger);
        assert!(out.delivered);
        assert_eq!(out.attempts, 1);
        let r = out.reply.expect("pull produces a reply");
        assert!(matches!(r.payload, UplinkPayload::PullReply { query_id: 1, .. }));
        // Latency includes the LPL preamble plus channel delays.
        assert!(out.latency >= SimDuration::from_secs(1));
        assert_eq!(ch.stats().delivered, 1);
        assert_eq!(ch.outstanding_rpcs(), 0, "pending table drained");
        assert!(ledger.total() > 0.0, "proxy pays the downlink energy");
    }

    #[test]
    fn lost_request_retries_and_latency_carries_the_timeouts() {
        // First request dies end-to-end, second survives.
        let cfg = DownlinkConfig {
            request_loss: LossProcess::Scripted(vec![false, true].into()),
            ..DownlinkConfig::default()
        };
        let mut ch = DownlinkChannel::new(cfg.clone(), LinkModel::perfect());
        let mut node = archived_node();
        let mut ledger = EnergyLedger::new();
        let out = ch.rpc(SimTime::from_hours(2), &pull(2), &mut node, &mac(), &mut ledger);
        assert!(out.delivered);
        assert_eq!(out.attempts, 2);
        assert!(
            out.latency >= cfg.rpc_timeout,
            "the lost attempt's timeout must surface in latency"
        );
        assert_eq!(ch.stats().retransmits, 1);
        assert_eq!(ch.stats().requests_lost, 1);
    }

    #[test]
    fn lost_reply_is_recovered_from_sensor_cache_not_flash() {
        let cfg = DownlinkConfig {
            reply_loss: LossProcess::Scripted(vec![false, true].into()),
            ..DownlinkConfig::default()
        };
        let mut ch = DownlinkChannel::new(cfg, LinkModel::perfect());
        let mut node = archived_node();
        let mut ledger = EnergyLedger::new();
        let out = ch.rpc(SimTime::from_hours(2), &pull(3), &mut node, &mac(), &mut ledger);
        assert!(out.delivered);
        assert_eq!(out.attempts, 2);
        // The sensor served the flash read once and answered the
        // retransmission from its reply cache.
        assert_eq!(node.stats().pulls_served, 1);
        assert_eq!(node.stats().duplicate_requests, 1);
        assert_eq!(ch.stats().replies_lost, 1);
    }

    #[test]
    fn dead_channel_fails_honestly_after_retries() {
        let cfg = DownlinkConfig {
            request_loss: LossProcess::Bernoulli(1.0),
            ..DownlinkConfig::default()
        };
        let max = cfg.max_retransmits;
        let timeout = cfg.rpc_timeout;
        let mut ch = DownlinkChannel::new(cfg, LinkModel::perfect());
        let mut node = archived_node();
        let mut ledger = EnergyLedger::new();
        let out = ch.rpc(SimTime::from_hours(2), &pull(4), &mut node, &mac(), &mut ledger);
        assert!(!out.delivered);
        assert!(out.reply.is_none());
        assert_eq!(out.attempts, max + 1);
        assert!(out.latency >= timeout * (max as u64 + 1));
        assert_eq!(ch.stats().rpc_failures, 1);
        assert_eq!(ch.outstanding_rpcs(), 0, "failed RPCs leave no stale entry");
    }

    #[test]
    fn ack_only_requests_dedup_at_the_sensor() {
        // Ack path drops the first ack; the model update must be applied
        // exactly once and the retransmission acked from the dedup
        // window.
        let cfg = DownlinkConfig {
            reply_loss: LossProcess::Scripted(vec![false, true].into()),
            ..DownlinkConfig::default()
        };
        let mut ch = DownlinkChannel::new(cfg, LinkModel::perfect());
        let mut node = archived_node();
        let mut ledger = EnergyLedger::new();
        let retune = DownlinkMsg::Retune {
            push_tolerance: Some(2.0),
            batching_interval: None,
            lpl_check_interval: None,
            reply_codec: None,
        };
        let out = ch.rpc(SimTime::from_hours(2), &retune, &mut node, &mac(), &mut ledger);
        assert!(out.delivered);
        assert_eq!(out.attempts, 2);
        assert_eq!(node.stats().duplicate_requests, 1);
    }

    #[test]
    fn budget_bounds_retries_and_refills_over_time() {
        let cfg = DownlinkConfig {
            request_loss: LossProcess::Bernoulli(1.0),
            max_retransmits: 1_000,
            retry_budget_j: 0.2, // a few preamble-bearing attempts' worth
            budget_refill_j_per_hour: 0.2,
            ..DownlinkConfig::default()
        };
        let mut ch = DownlinkChannel::new(cfg, LinkModel::perfect());
        let mut node = archived_node();
        let mut ledger = EnergyLedger::new();
        let out = ch.rpc(SimTime::from_hours(2), &pull(5), &mut node, &mac(), &mut ledger);
        assert!(!out.delivered);
        assert_eq!(ch.stats().dropped_budget, 1);
        assert!(out.attempts < 100, "budget must bound attempts");
        let drained = ch.budget_remaining_j();
        // An hour later the bucket has refilled.
        ch.tick(SimTime::from_hours(3));
        assert!(ch.budget_remaining_j() > drained);
    }

    #[test]
    fn gated_link_fails_but_proxy_still_pays_for_transmitting() {
        let mut ch = DownlinkChannel::perfect();
        ch.set_link_up(false);
        let mut node = archived_node();
        let mut ledger = EnergyLedger::new();
        let rx_before = node.ledger().total();
        let out = ch.rpc(SimTime::from_hours(2), &pull(6), &mut node, &mac(), &mut ledger);
        assert!(!out.delivered);
        // The proxy cannot know the sensor is down before transmitting:
        // every attempt pays preamble + frames into the void…
        assert!(
            ledger.total() > 0.0,
            "transmissions towards a down sensor must cost energy"
        );
        // …while the crashed sensor's radio is off and pays nothing.
        assert_eq!(node.ledger().total(), rx_before);
        assert!(ch.stats().blocked_link_down >= 1);
        // Reopening restores service.
        ch.set_link_up(true);
        let out = ch.rpc(SimTime::from_hours(2), &pull(7), &mut node, &mac(), &mut ledger);
        assert!(out.delivered);
    }

    /// Pumps with an effectively unlimited attempt budget.
    fn pump_all(
        ch: &mut DownlinkChannel,
        t: SimTime,
        node: &mut SensorNode,
        ledger: &mut EnergyLedger,
    ) -> Vec<AsyncRpcEvent> {
        let mut budget = u32::MAX;
        ch.pump_async(t, node, &mac(), ledger, &mut budget)
    }

    #[test]
    fn async_rpcs_are_multi_outstanding_and_drain() {
        let mut ch = DownlinkChannel::perfect();
        let mut node = archived_node();
        let mut ledger = EnergyLedger::new();
        let t = SimTime::from_hours(2);
        let deadline = t + SimDuration::from_mins(10);
        for q in 0..5u64 {
            ch.submit_async(t, pull(q), deadline);
        }
        assert_eq!(ch.async_in_flight(), 5);
        assert_eq!(ch.outstanding_rpcs(), 5, "pending table holds all five");
        assert_eq!(ch.stats().max_in_flight, 5);
        let events = pump_all(&mut ch, t, &mut node, &mut ledger);
        assert_eq!(events.len(), 5);
        let mut qids: Vec<u64> = events
            .iter()
            .map(|e| match e {
                AsyncRpcEvent::Completed { query_id, reply, .. } => {
                    assert!(matches!(reply.payload, UplinkPayload::PullReply { .. }));
                    *query_id
                }
                other => panic!("perfect channel must complete: {other:?}"),
            })
            .collect();
        qids.sort_unstable();
        assert_eq!(qids, vec![0, 1, 2, 3, 4]);
        // Bookkeeping invariant: nothing leaks after completion.
        assert_eq!(ch.async_in_flight(), 0);
        assert_eq!(ch.outstanding_rpcs(), 0);
    }

    #[test]
    fn async_lost_attempt_retransmits_on_a_later_pump() {
        let cfg = DownlinkConfig {
            request_loss: LossProcess::Scripted(vec![false, true].into()),
            ..DownlinkConfig::default()
        };
        let timeout = cfg.rpc_timeout;
        let mut ch = DownlinkChannel::new(cfg, LinkModel::perfect());
        let mut node = archived_node();
        let mut ledger = EnergyLedger::new();
        let t = SimTime::from_hours(2);
        ch.submit_async(t, pull(1), t + SimDuration::from_mins(10));
        assert!(pump_all(&mut ch, t, &mut node, &mut ledger).is_empty());
        assert_eq!(ch.async_in_flight(), 1, "lost RPC stays outstanding");
        // Not due yet: pumping again immediately does nothing.
        assert!(pump_all(&mut ch, t, &mut node, &mut ledger).is_empty());
        assert_eq!(ch.stats().retransmits, 0);
        // After the timeout the retransmission goes out and completes.
        let events = pump_all(&mut ch, t + timeout, &mut node, &mut ledger);
        assert_eq!(events.len(), 1);
        assert!(matches!(
            events[0],
            AsyncRpcEvent::Completed { query_id: 1, attempts: 2, .. }
        ));
        assert_eq!(ch.stats().retransmits, 1);
        assert_eq!(ch.outstanding_rpcs(), 0);
    }

    #[test]
    fn async_expiry_is_honest_and_leaves_no_entry() {
        let cfg = DownlinkConfig {
            request_loss: LossProcess::Bernoulli(1.0),
            ..DownlinkConfig::default()
        };
        let mut ch = DownlinkChannel::new(cfg, LinkModel::perfect());
        let mut node = archived_node();
        let mut ledger = EnergyLedger::new();
        let t = SimTime::from_hours(2);
        let deadline = t + SimDuration::from_secs(20);
        ch.submit_async(t, pull(7), deadline);
        let mut now = t;
        let mut expired = None;
        for _ in 0..10 {
            for e in pump_all(&mut ch, now, &mut node, &mut ledger) {
                expired = Some(e);
            }
            now += SimDuration::from_secs(10);
        }
        match expired.expect("dead channel must expire the RPC") {
            AsyncRpcEvent::Expired { query_id, attempts } => {
                assert_eq!(query_id, 7);
                assert!(attempts >= 1, "at least one attempt before expiry");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(ch.async_in_flight(), 0, "expired RPCs leave no entry");
        assert_eq!(ch.outstanding_rpcs(), 0);
        assert_eq!(ch.stats().async_expired, 1);
    }

    #[test]
    fn async_cancel_removes_pending_entry() {
        let mut ch = DownlinkChannel::perfect();
        let t = SimTime::from_hours(2);
        ch.submit_async(t, pull(3), t + SimDuration::from_mins(5));
        assert!(ch.cancel_async(3));
        assert!(!ch.cancel_async(3), "double cancel is a no-op");
        assert_eq!(ch.async_in_flight(), 0);
        assert_eq!(ch.outstanding_rpcs(), 0);
    }

    #[test]
    fn async_attempt_budget_bounds_per_pump_work() {
        let cfg = DownlinkConfig {
            request_loss: LossProcess::Bernoulli(1.0),
            ..DownlinkConfig::default()
        };
        let mut ch = DownlinkChannel::new(cfg, LinkModel::perfect());
        let mut node = archived_node();
        let mut ledger = EnergyLedger::new();
        let t = SimTime::from_hours(2);
        for q in 0..5u64 {
            ch.submit_async(t, pull(q), t + SimDuration::from_mins(10));
        }
        let mut budget = 2u32;
        ch.pump_async(t, &mut node, &mac(), &mut ledger, &mut budget);
        assert_eq!(budget, 0);
        assert_eq!(
            ch.stats().requests_lost,
            2,
            "only the budgeted attempts were transmitted"
        );
        assert_eq!(ch.async_in_flight(), 5, "unattempted RPCs stay queued");
    }

    #[test]
    fn async_empty_retry_budget_defers_instead_of_dropping() {
        // Capacity for exactly one retransmission: the second retry
        // must defer until the bucket refills.
        let retry_cost = mac().expected_send_energy(pull(1).wire_bytes());
        let cfg = DownlinkConfig {
            request_loss: LossProcess::Scripted(
                vec![false, false, true].into(),
            ),
            retry_budget_j: retry_cost * 1.5,
            budget_refill_j_per_hour: retry_cost * 2.0,
            ..DownlinkConfig::default()
        };
        let timeout = cfg.rpc_timeout;
        let mut ch = DownlinkChannel::new(cfg, LinkModel::perfect());
        let mut node = archived_node();
        let mut ledger = EnergyLedger::new();
        let t = SimTime::from_hours(2);
        ch.submit_async(t, pull(1), t + SimDuration::from_hours(2));
        // Attempt 1 (free) lost; retry 1 (affordable) lost; retry 2
        // cannot afford the drained bucket and defers.
        assert!(pump_all(&mut ch, t, &mut node, &mut ledger).is_empty());
        assert!(pump_all(&mut ch, t + timeout, &mut node, &mut ledger).is_empty());
        assert!(pump_all(&mut ch, t + timeout * 2, &mut node, &mut ledger).is_empty());
        assert!(ch.stats().deferred_budget >= 1);
        assert_eq!(ch.async_in_flight(), 1, "deferred RPC must survive");
        // An hour later the bucket refilled; the retry completes.
        let events = pump_all(&mut ch, t + SimDuration::from_hours(1), &mut node, &mut ledger);
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0], AsyncRpcEvent::Completed { query_id: 1, .. }));
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let cfg = DownlinkConfig {
                request_loss: LossProcess::Bernoulli(0.4),
                reply_loss: LossProcess::Bernoulli(0.2),
                seed,
                ..DownlinkConfig::default()
            };
            let mut ch = DownlinkChannel::new(cfg, LinkModel::perfect());
            let mut node = archived_node();
            let mut ledger = EnergyLedger::new();
            (0..32u64)
                .map(|i| {
                    let out = ch.rpc(
                        SimTime::from_hours(2) + SimDuration::from_secs(i),
                        &pull(i),
                        &mut node,
                        &mac(),
                        &mut ledger,
                    );
                    (out.delivered, out.attempts)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }
}
