//! Gap detection and archive-backed recovery bookkeeping.
//!
//! The fabric gives every uplink a per-sensor sequence number, so loss
//! is no longer silent: a delivery whose sequence number jumps past the
//! expected one proves that messages died in between. The tracker turns
//! that proof into a *time span to repair* — from the last instant the
//! proxy's view was known-contiguous to the send time of the message
//! that revealed the gap — and queues it for replay. The driver then
//! pulls the span from the sensor's flash archive (the paper's complete
//! local archive, via the indexed query path) and folds the reply into
//! its cache, restoring the no-silent-gaps invariant.
//!
//! Duplicates (retransmission after a lost ack) are filtered here too,
//! so at-least-once fabric delivery becomes exactly-once cache update.

use std::collections::BTreeSet;

use presto_sim::{SimDuration, SimTime};

/// How many delivered sequence numbers are remembered per sensor for
/// duplicate filtering (bounded; older duplicates are caught by the
/// `< low watermark` test).
const DEDUP_WINDOW: usize = 512;

/// Classification of one fabric delivery.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Observation {
    /// First sight of this message.
    Fresh,
    /// Retransmitted copy of a message already consumed.
    Duplicate,
    /// First sight, and it revealed missing predecessors: `[from, to]`
    /// is the span whose pushed context was lost.
    Gap {
        /// Last known-contiguous instant before the hole.
        from: SimTime,
        /// Send time of the message that revealed the hole.
        to: SimTime,
    },
}

/// A queued repair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PendingRecovery {
    /// Sensor to repair.
    pub sensor: usize,
    /// Span start (pre-padding).
    pub from: SimTime,
    /// Span end (pre-padding).
    pub to: SimTime,
    /// When the hole was discovered (for recovery-latency metrics).
    pub detected_at: SimTime,
}

/// Tracker counters.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RecoveryStats {
    /// Sequence gaps detected.
    pub gaps_detected: u64,
    /// Duplicate deliveries filtered.
    pub duplicates: u64,
    /// Repairs completed.
    pub recoveries: u64,
    /// Repairs attempted but not yet completed (pull failed; retried).
    pub failed_attempts: u64,
    /// Samples replayed from archives by completed repairs.
    pub samples_replayed: u64,
    /// Sum of (completion − detection) over completed repairs, seconds.
    pub total_recovery_latency_s: f64,
}

impl presto_telemetry::Observe for RecoveryStats {
    fn observe(&self, s: &mut presto_telemetry::Section) {
        s.counter("gaps_detected", self.gaps_detected);
        s.counter("duplicates", self.duplicates);
        s.counter("recoveries", self.recoveries);
        s.counter("failed_attempts", self.failed_attempts);
        s.counter("samples_replayed", self.samples_replayed);
        s.gauge("total_recovery_latency_s", self.total_recovery_latency_s);
    }
}

impl RecoveryStats {
    /// Accumulates another tracker's counters (fleet aggregation); the
    /// latency field is a sum, so it stays a sum under merge.
    pub fn merge(&mut self, other: &RecoveryStats) {
        self.gaps_detected += other.gaps_detected;
        self.duplicates += other.duplicates;
        self.recoveries += other.recoveries;
        self.failed_attempts += other.failed_attempts;
        self.samples_replayed += other.samples_replayed;
        self.total_recovery_latency_s += other.total_recovery_latency_s;
    }
}

#[derive(Clone, Debug)]
struct SensorTrack {
    next_seq: u64,
    covered_until: SimTime,
    recent: BTreeSet<u64>,
}

/// Per-deployment gap tracking and repair queue.
#[derive(Clone, Debug)]
pub struct GapTracker {
    tracks: Vec<SensorTrack>,
    pending: Vec<PendingRecovery>,
    stats: RecoveryStats,
}

impl GapTracker {
    /// Creates a tracker for `sensors` sensors.
    pub fn new(sensors: usize) -> Self {
        GapTracker {
            tracks: vec![
                SensorTrack {
                    next_seq: 0,
                    covered_until: SimTime::ZERO,
                    recent: BTreeSet::new(),
                };
                sensors
            ],
            pending: Vec::new(),
            stats: RecoveryStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> RecoveryStats {
        self.stats
    }

    /// Last known-contiguous instant for `sensor`.
    pub fn covered_until(&self, sensor: usize) -> SimTime {
        self.tracks[sensor].covered_until
    }

    /// Classifies a fabric delivery `(sensor, seq)` whose payload was
    /// sent at `sent_at`, observed at time `now`. `Fresh` and `Gap`
    /// deliveries should be consumed; `Duplicate`s discarded.
    pub fn observe(&mut self, sensor: usize, seq: u64, sent_at: SimTime, now: SimTime) -> Observation {
        let track = &mut self.tracks[sensor];
        if seq < track.next_seq {
            // Late or duplicate. A seq we remember consuming is a
            // duplicate; one below the watermark but unremembered is a
            // late first copy (its gap is already queued) — consume it.
            if track.recent.contains(&seq) {
                self.stats.duplicates += 1;
                return Observation::Duplicate;
            }
            track.recent.insert(seq);
            Self::prune(&mut track.recent);
            track.covered_until = track.covered_until.max(sent_at);
            return Observation::Fresh;
        }
        let gap = seq > track.next_seq;
        let from = track.covered_until;
        track.recent.insert(seq);
        Self::prune(&mut track.recent);
        track.next_seq = seq + 1;
        track.covered_until = track.covered_until.max(sent_at);
        if gap {
            self.stats.gaps_detected += 1;
            self.push_pending(PendingRecovery {
                sensor,
                from,
                to: sent_at,
                detected_at: now,
            });
            Observation::Gap { from, to: sent_at }
        } else {
            Observation::Fresh
        }
    }

    fn prune(recent: &mut BTreeSet<u64>) {
        while recent.len() > DEDUP_WINDOW {
            recent.pop_first();
        }
    }

    /// Queues an outage repair directly (reconnect after a detected
    /// failure, where no sequence jump may exist — e.g. a rebooted
    /// sensor whose pending messages were wiped).
    pub fn request_recovery(&mut self, sensor: usize, from: SimTime, to: SimTime, now: SimTime) {
        self.push_pending(PendingRecovery {
            sensor,
            from,
            to,
            detected_at: now,
        });
    }

    fn push_pending(&mut self, r: PendingRecovery) {
        if r.to <= r.from {
            return;
        }
        // Coalesce with an existing pending span for the same sensor
        // when they touch — repeated gaps during one outage become one
        // repair pull.
        if let Some(existing) = self
            .pending
            .iter_mut()
            .find(|p| p.sensor == r.sensor && p.from <= r.to && r.from <= p.to)
        {
            existing.from = existing.from.min(r.from);
            existing.to = existing.to.max(r.to);
            existing.detected_at = existing.detected_at.min(r.detected_at);
            return;
        }
        self.pending.push(r);
    }

    /// Repairs currently queued.
    pub fn pending(&self) -> &[PendingRecovery] {
        &self.pending
    }

    /// Takes every queued repair, leaving the queue empty. Failed
    /// attempts should be re-queued with
    /// [`GapTracker::requeue_failed`].
    pub fn take_pending(&mut self) -> Vec<PendingRecovery> {
        std::mem::take(&mut self.pending)
    }

    /// Returns a failed repair to the queue.
    pub fn requeue_failed(&mut self, r: PendingRecovery) {
        self.stats.failed_attempts += 1;
        self.push_pending(r);
    }

    /// Records a completed repair that replayed `samples` archived
    /// samples, finishing at `now`.
    pub fn complete(&mut self, r: &PendingRecovery, samples: u64, now: SimTime) {
        self.stats.recoveries += 1;
        self.stats.samples_replayed += samples;
        self.stats.total_recovery_latency_s += (now - r.detected_at).as_secs_f64();
        let track = &mut self.tracks[r.sensor];
        track.covered_until = track.covered_until.max(r.to);
    }

    /// Mean recovery latency over completed repairs, seconds.
    pub fn mean_recovery_latency_s(&self) -> f64 {
        if self.stats.recoveries == 0 {
            0.0
        } else {
            self.stats.total_recovery_latency_s / self.stats.recoveries as f64
        }
    }
}

/// Convenience: widens a repair span by `pad` on both sides (clamping
/// at zero), absorbing in-flight boundary effects and clock slack.
pub fn padded_span(from: SimTime, to: SimTime, pad: SimDuration) -> (SimTime, SimTime) {
    let lo = if from.as_micros() > pad.as_micros() {
        from - pad
    } else {
        SimTime::ZERO
    };
    (lo, to + pad)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn in_order_deliveries_are_fresh() {
        let mut g = GapTracker::new(1);
        for i in 0..10u64 {
            assert_eq!(g.observe(0, i, t(i * 10), t(i * 10 + 1)), Observation::Fresh);
        }
        assert_eq!(g.covered_until(0), t(90));
        assert!(g.pending().is_empty());
        assert_eq!(g.stats().gaps_detected, 0);
    }

    #[test]
    fn sequence_jump_reports_the_missing_span() {
        let mut g = GapTracker::new(1);
        g.observe(0, 0, t(10), t(11));
        g.observe(0, 1, t(20), t(21));
        // Seqs 2..5 lost.
        let obs = g.observe(0, 5, t(60), t(61));
        assert_eq!(
            obs,
            Observation::Gap {
                from: t(20),
                to: t(60)
            }
        );
        assert_eq!(g.pending().len(), 1);
        assert_eq!(g.pending()[0].from, t(20));
        assert_eq!(g.pending()[0].to, t(60));
    }

    #[test]
    fn duplicates_are_filtered_but_late_firsts_consumed() {
        let mut g = GapTracker::new(1);
        g.observe(0, 0, t(10), t(11));
        assert_eq!(g.observe(0, 0, t(10), t(12)), Observation::Duplicate);
        // Seq 2 arrives before seq 1 (reordering): gap queued.
        assert!(matches!(
            g.observe(0, 2, t(30), t(31)),
            Observation::Gap { .. }
        ));
        // Seq 1's late first copy is Fresh, not Duplicate.
        assert_eq!(g.observe(0, 1, t(20), t(32)), Observation::Fresh);
        // And its retransmission IS a duplicate.
        assert_eq!(g.observe(0, 1, t(20), t(33)), Observation::Duplicate);
        assert_eq!(g.stats().duplicates, 2);
    }

    #[test]
    fn overlapping_gaps_coalesce_into_one_repair() {
        let mut g = GapTracker::new(1);
        g.observe(0, 0, t(10), t(10));
        g.observe(0, 3, t(40), t(40)); // gap [10, 40]
        g.observe(0, 7, t(80), t(80)); // gap [40, 80] — touches
        assert_eq!(g.pending().len(), 1);
        assert_eq!(g.pending()[0].from, t(10));
        assert_eq!(g.pending()[0].to, t(80));
        assert_eq!(g.stats().gaps_detected, 2);
    }

    #[test]
    fn completion_advances_coverage_and_latency() {
        let mut g = GapTracker::new(1);
        g.observe(0, 0, t(10), t(10));
        g.observe(0, 4, t(50), t(55));
        let pending = g.take_pending();
        assert_eq!(pending.len(), 1);
        g.complete(&pending[0], 120, t(65));
        assert_eq!(g.stats().recoveries, 1);
        assert_eq!(g.stats().samples_replayed, 120);
        assert!((g.mean_recovery_latency_s() - 10.0).abs() < 1e-9);
        assert_eq!(g.covered_until(0), t(50));
        assert!(g.pending().is_empty());
    }

    #[test]
    fn requeue_failed_keeps_the_repair_alive() {
        let mut g = GapTracker::new(1);
        g.observe(0, 0, t(10), t(10));
        g.observe(0, 2, t(30), t(30));
        let pending = g.take_pending();
        g.requeue_failed(pending[0]);
        assert_eq!(g.pending().len(), 1);
        assert_eq!(g.stats().failed_attempts, 1);
    }

    #[test]
    fn explicit_outage_recovery_request() {
        let mut g = GapTracker::new(2);
        g.request_recovery(1, t(100), t(500), t(510));
        assert_eq!(g.pending().len(), 1);
        assert_eq!(g.pending()[0].sensor, 1);
        // Degenerate spans are ignored.
        g.request_recovery(0, t(100), t(100), t(100));
        assert_eq!(g.pending().len(), 1);
    }

    #[test]
    fn padded_span_clamps_at_zero() {
        let (lo, hi) = padded_span(t(10), t(20), SimDuration::from_secs(30));
        assert_eq!(lo, SimTime::ZERO);
        assert_eq!(hi, t(50));
    }
}
