//! Reliability under loss: the message fabric, failure detection, and
//! archive-backed recovery.
//!
//! ## The silence-ambiguity problem
//!
//! PRESTO's central energy trick is that a sensor carrying a model
//! replica stays *silent* while its readings conform to the shared
//! model: the proxy extrapolates, and silence provably means "within
//! tolerance". But that proof assumes the channel works. On a real
//! low-power radio network, silence is ambiguous three ways:
//!
//! 1. the sensor is conforming (the good case the paper optimizes for);
//! 2. the sensor is partitioned — it *is* pushing deviations and they
//!    are being lost, so the proxy's replica quietly diverges;
//! 3. the sensor is dead — nothing is being sampled at all.
//!
//! A proxy that cannot tell these apart will keep answering queries
//! from an extrapolation whose guarantee no longer holds, with full
//! confidence. This crate resolves the ambiguity with three cooperating
//! mechanisms, mirroring the paper's proxy-side liveness tracking plus
//! its use of the complete local archive as the recovery substrate:
//!
//! * [`fabric`] — every asynchronous sensor→proxy message rides a lossy,
//!   delayed channel (driven by `presto-net`'s [`presto_net::LossProcess`]
//!   and the sim clock) with sequence numbers, delayed delivery,
//!   ack/retransmit, and an energy-charged retry budget. Losses become
//!   *visible* as sequence gaps instead of silent divergence.
//! * [`liveness`] — low-rate heartbeat leases let the proxy grade each
//!   sensor [`Health::Live`] / [`Health::Suspect`] / [`Health::Dead`];
//!   query confidence bounds widen accordingly, so degraded answers are
//!   honestly labelled rather than silently wrong.
//! * [`recovery`] — sequence gaps and reconnects after an outage mark a
//!   missed span; the proxy then replays that span from the sensor's
//!   flash archive (the paper's "complete local archive", served by the
//!   indexed query path) and repairs its cache, turning the archive into
//!   the system's write-ahead log.
//!
//! The split of roles matters: retransmission covers *short* loss
//! bursts cheaply; anything longer falls through to archive replay,
//! which is exactly what the paper's always-archive design makes
//! possible.

pub mod downlink;
pub mod fabric;
pub mod liveness;
pub mod recovery;

pub use downlink::{
    AsyncRpcEvent, AttemptEvent, DownlinkChannel, DownlinkConfig, DownlinkStats, RpcOutcome,
};
pub use fabric::{Fabric, FabricConfig, FabricStats, SequencedUplink};
pub use liveness::{Health, LivenessConfig, LivenessMonitor, LivenessStats};
pub use recovery::{GapTracker, Observation, PendingRecovery, RecoveryStats};

/// Everything the system driver needs to run reliably under loss.
#[derive(Clone, Debug)]
pub struct ReliabilityConfig {
    /// Message fabric parameters (channel loss, delays, retransmit).
    pub fabric: FabricConfig,
    /// Downlink channel parameters (proxy→sensor requests, replies).
    pub downlink: DownlinkConfig,
    /// Shared-fading chain near each proxy. When set, every channel of a
    /// proxy's sensors — fabric uplinks, their ack paths, and the
    /// downlink request/reply paths — samples one common
    /// [`presto_net::SharedLossState`] per proxy instead of its
    /// configured loss process, so bursts hit all of them together.
    pub shared_fading: Option<presto_net::GilbertElliott>,
    /// Liveness lease parameters.
    pub liveness: LivenessConfig,
    /// Heartbeat interval for silent sensors. Must be shorter than the
    /// liveness lease or healthy-but-quiet sensors will flap Suspect.
    pub heartbeat_every: presto_sim::SimDuration,
    /// Reply-codec tolerance for recovery pulls (tight: the replay is
    /// repairing ground truth, not answering a sloppy query).
    pub recovery_tolerance: f64,
    /// Padding added around a detected gap when pulling, absorbing
    /// boundary effects (in-flight messages, clock slack).
    pub recovery_pad: presto_sim::SimDuration,
}

impl Default for ReliabilityConfig {
    fn default() -> Self {
        ReliabilityConfig {
            fabric: FabricConfig::default(),
            downlink: DownlinkConfig::default(),
            shared_fading: None,
            liveness: LivenessConfig::default(),
            // Low-rate on purpose: ~19 B every 10 min is ~2.7 kB/day,
            // noise next to the model-driven push budget. Experiments
            // that need fast detection tighten this with the lease.
            heartbeat_every: presto_sim::SimDuration::from_mins(10),
            recovery_tolerance: 0.05,
            recovery_pad: presto_sim::SimDuration::from_secs(62),
        }
    }
}
