//! Proxy-side failure detection: heartbeat leases over silent sensors.
//!
//! Under model-driven push a healthy sensor may legitimately say
//! nothing for hours, so absence of data is not evidence of death. The
//! monitor instead leases on *any* contact — deviation pushes, batches,
//! pull replies, seal notifications, and the low-rate heartbeats
//! sensors emit when they have been silent too long. A sensor whose
//! lease expires becomes [`Health::Suspect`]; one silent much longer
//! becomes [`Health::Dead`]. Query answers widen their confidence
//! bounds accordingly: the model-silence guarantee ("silence means
//! within tolerance") only holds while the channel is known to work.

use presto_sim::{SimDuration, SimTime};

/// Graded sensor health.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Health {
    /// Lease is current: silence is model-conforming silence.
    Live,
    /// Lease expired: the sensor may be partitioned; extrapolations are
    /// suspect and confidence bounds widen.
    Suspect,
    /// Silent past the dead threshold: answers relying on this sensor's
    /// model carry no confidence.
    Dead,
}

impl Health {
    /// Widens a query confidence bound (one sigma) for this health
    /// grade. `floor` is the sensor's push tolerance — the scale of the
    /// guarantee that silence used to carry.
    ///
    /// * `Live` — unchanged.
    /// * `Suspect` — the guarantee may have been broken for up to the
    ///   lease duration: double the bound and add a tolerance of slack.
    /// * `Dead` — no guarantee at all: infinite.
    pub fn widen_sigma(self, sigma: f64, floor: f64) -> f64 {
        match self {
            Health::Live => sigma,
            Health::Suspect => sigma * 2.0 + floor,
            Health::Dead => f64::INFINITY,
        }
    }
}

/// Lease parameters.
#[derive(Clone, Copy, Debug)]
pub struct LivenessConfig {
    /// Contact lease: silence longer than this makes a sensor Suspect.
    pub lease: SimDuration,
    /// Silence longer than this makes a sensor Dead.
    pub dead_after: SimDuration,
}

impl Default for LivenessConfig {
    fn default() -> Self {
        LivenessConfig {
            // ~2.5 missed heartbeats at the default 10-minute beacon.
            lease: SimDuration::from_mins(25),
            dead_after: SimDuration::from_hours(1),
        }
    }
}

/// Monitor counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LivenessStats {
    /// Live → Suspect transitions observed.
    pub suspected: u64,
    /// → Dead transitions observed.
    pub died: u64,
    /// Suspect/Dead → Live transitions (reconnects).
    pub reconnected: u64,
}

presto_telemetry::observe_counters!(LivenessStats {
    suspected,
    died,
    reconnected,
});

impl LivenessStats {
    /// Accumulates another monitor's counters (fleet aggregation).
    pub fn merge(&mut self, other: &LivenessStats) {
        self.suspected += other.suspected;
        self.died += other.died;
        self.reconnected += other.reconnected;
    }
}

/// Per-sensor lease state.
#[derive(Clone, Debug)]
struct Slot {
    last_heard: SimTime,
    state: Health,
    /// When the sensor left `Live` (first Suspect instant of the
    /// current outage) — the failure-detection timestamp.
    detected_at: Option<SimTime>,
}

/// The proxy-side liveness monitor.
#[derive(Clone, Debug)]
pub struct LivenessMonitor {
    config: LivenessConfig,
    slots: Vec<Slot>,
    stats: LivenessStats,
}

impl LivenessMonitor {
    /// Creates a monitor for `sensors` sensors, all initially Live with
    /// a lease starting at time zero.
    pub fn new(config: LivenessConfig, sensors: usize) -> Self {
        assert!(
            config.lease <= config.dead_after,
            "dead threshold must not precede the lease"
        );
        LivenessMonitor {
            config,
            slots: vec![
                Slot {
                    last_heard: SimTime::ZERO,
                    state: Health::Live,
                    detected_at: None,
                };
                sensors
            ],
            stats: LivenessStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &LivenessConfig {
        &self.config
    }

    /// Counters.
    pub fn stats(&self) -> LivenessStats {
        self.stats
    }

    /// Records contact from `sensor` at `t` (any delivered message).
    /// Returns true when this contact is a reconnect (the sensor was
    /// Suspect or Dead) — the driver's cue to start recovery.
    pub fn heard(&mut self, sensor: usize, t: SimTime) -> bool {
        let slot = &mut self.slots[sensor];
        slot.last_heard = slot.last_heard.max(t);
        if slot.state != Health::Live {
            slot.state = Health::Live;
            slot.detected_at = None;
            self.stats.reconnected += 1;
            true
        } else {
            false
        }
    }

    /// Re-grades `sensor` at time `t`, recording transitions. Call once
    /// per epoch (or before reading [`LivenessMonitor::health`]).
    pub fn check(&mut self, sensor: usize, t: SimTime) -> Health {
        let slot = &mut self.slots[sensor];
        let age = t - slot.last_heard;
        let fresh = if age >= self.config.dead_after {
            Health::Dead
        } else if age >= self.config.lease {
            Health::Suspect
        } else {
            Health::Live
        };
        // A lease re-grade can only worsen health; only `heard`
        // (actual contact) restores Live.
        let rank = |h: Health| match h {
            Health::Live => 0u8,
            Health::Suspect => 1,
            Health::Dead => 2,
        };
        if rank(fresh) <= rank(slot.state) {
            return slot.state;
        }
        if slot.state == Health::Live {
            slot.detected_at = Some(t);
            self.stats.suspected += 1;
        }
        if fresh == Health::Dead {
            self.stats.died += 1;
        }
        slot.state = fresh;
        fresh
    }

    /// The last graded health of `sensor` (no re-grade).
    pub fn health(&self, sensor: usize) -> Health {
        self.slots[sensor].state
    }

    /// When the current outage of `sensor` was first detected, if it is
    /// in one.
    pub fn detected_at(&self, sensor: usize) -> Option<SimTime> {
        self.slots[sensor].detected_at
    }

    /// Last contact time of `sensor`.
    pub fn last_heard(&self, sensor: usize) -> SimTime {
        self.slots[sensor].last_heard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LivenessConfig {
        LivenessConfig {
            lease: SimDuration::from_mins(5),
            dead_after: SimDuration::from_mins(15),
        }
    }

    fn t(mins: u64) -> SimTime {
        SimTime::from_mins(mins)
    }

    #[test]
    fn lease_expiry_walks_live_suspect_dead() {
        let mut m = LivenessMonitor::new(cfg(), 1);
        m.heard(0, t(0));
        assert_eq!(m.check(0, t(4)), Health::Live);
        assert_eq!(m.check(0, t(5)), Health::Suspect, "lease boundary");
        assert_eq!(m.check(0, t(14)), Health::Suspect);
        assert_eq!(m.check(0, t(15)), Health::Dead, "dead boundary");
        assert_eq!(m.check(0, t(60)), Health::Dead);
        let s = m.stats();
        assert_eq!(s.suspected, 1);
        assert_eq!(s.died, 1);
        assert_eq!(s.reconnected, 0);
    }

    #[test]
    fn any_contact_renews_the_lease() {
        let mut m = LivenessMonitor::new(cfg(), 1);
        for k in 0..10u64 {
            m.heard(0, t(4 * k));
            assert_eq!(m.check(0, t(4 * k + 3)), Health::Live);
        }
        assert_eq!(m.stats().suspected, 0);
    }

    #[test]
    fn reconnect_is_reported_once_and_restores_live() {
        let mut m = LivenessMonitor::new(cfg(), 1);
        m.heard(0, t(0));
        assert_eq!(m.check(0, t(20)), Health::Dead);
        assert_eq!(m.detected_at(0), Some(t(20)));
        // First contact after the outage reports a reconnect.
        assert!(m.heard(0, t(21)));
        assert_eq!(m.health(0), Health::Live);
        assert_eq!(m.detected_at(0), None);
        // Subsequent contacts do not.
        assert!(!m.heard(0, t(22)));
        assert_eq!(m.stats().reconnected, 1);
    }

    #[test]
    fn check_never_resurrects_without_contact() {
        let mut m = LivenessMonitor::new(cfg(), 1);
        m.heard(0, t(0));
        assert_eq!(m.check(0, t(6)), Health::Suspect);
        // A stale-time re-check (e.g. caller probing a past instant)
        // must not flip the sensor back to Live.
        assert_eq!(m.check(0, t(1)), Health::Suspect);
    }

    #[test]
    fn detection_timestamp_marks_first_suspicion() {
        let mut m = LivenessMonitor::new(cfg(), 2);
        m.heard(0, t(10));
        m.heard(1, t(10));
        assert_eq!(m.check(0, t(16)), Health::Suspect);
        assert_eq!(m.detected_at(0), Some(t(16)));
        // Staying suspect does not move the detection point.
        m.check(0, t(18));
        assert_eq!(m.detected_at(0), Some(t(16)));
        // Going dead does not either — the outage started at t(16).
        m.check(0, t(40));
        assert_eq!(m.detected_at(0), Some(t(16)));
        // The other sensor is untouched.
        assert_eq!(m.check(1, t(14)), Health::Live);
    }

    #[test]
    fn sigma_widening_by_grade() {
        assert_eq!(Health::Live.widen_sigma(0.5, 1.0), 0.5);
        assert_eq!(Health::Suspect.widen_sigma(0.5, 1.0), 2.0);
        assert!(Health::Dead.widen_sigma(0.5, 1.0).is_infinite());
        // A zero-sigma cache hit still widens under suspicion.
        assert!(Health::Suspect.widen_sigma(0.0, 1.0) >= 1.0);
    }
}
