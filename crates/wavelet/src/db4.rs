//! Daubechies-4 discrete wavelet transform with periodic extension.
//!
//! DB4's extra vanishing moment represents smooth diurnal trends with
//! fewer significant coefficients than Haar, at roughly twice the cycle
//! cost. The proxy uses it when re-compressing cached data for archival
//! or for building extrapolation summaries; sensors default to Haar.
//!
//! Coefficient layout matches [`crate::haar`]: `[approx(L) | detail(L) |
//! ... | detail(1)]` for an `L`-level decomposition of a power-of-two
//! signal.

/// The four Daubechies-4 scaling filter taps.
fn db4_taps() -> [f64; 4] {
    let s3 = 3f64.sqrt();
    let norm = 4.0 * 2f64.sqrt();
    [
        (1.0 + s3) / norm,
        (3.0 + s3) / norm,
        (3.0 - s3) / norm,
        (1.0 - s3) / norm,
    ]
}

/// One forward DB4 level with periodic boundary handling.
fn forward_level(x: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let n = x.len();
    debug_assert!(n >= 4 && n.is_power_of_two());
    let h = db4_taps();
    // Wavelet (high-pass) taps: g[k] = (−1)^k · h[3−k].
    let g = [h[3], -h[2], h[1], -h[0]];
    let half = n / 2;
    let mut approx = Vec::with_capacity(half);
    let mut detail = Vec::with_capacity(half);
    for i in 0..half {
        let mut a = 0.0;
        let mut d = 0.0;
        for k in 0..4 {
            let idx = (2 * i + k) % n;
            a += h[k] * x[idx];
            d += g[k] * x[idx];
        }
        approx.push(a);
        detail.push(d);
    }
    (approx, detail)
}

/// One inverse DB4 level (exact inverse of [`forward_level`]).
fn inverse_level(approx: &[f64], detail: &[f64]) -> Vec<f64> {
    let half = approx.len();
    let n = half * 2;
    let h = db4_taps();
    let g = [h[3], -h[2], h[1], -h[0]];
    let mut x = vec![0.0; n];
    for i in 0..half {
        for k in 0..4 {
            let idx = (2 * i + k) % n;
            x[idx] += h[k] * approx[i] + g[k] * detail[i];
        }
    }
    x
}

/// Maximum DB4 decomposition depth for length `n`: each level needs at
/// least 4 approximation samples.
pub fn db4_levels(n: usize) -> usize {
    if !n.is_power_of_two() || n < 8 {
        return 0;
    }
    let mut len = n;
    let mut levels = 0;
    while len >= 8 {
        len /= 2;
        levels += 1;
    }
    levels
}

/// Forward multi-level DB4 transform.
///
/// `data.len()` must be a power of two ≥ 8 and `levels ≤ db4_levels(n)`.
pub fn db4_forward(data: &[f64], levels: usize) -> Vec<f64> {
    let n = data.len();
    assert!(n.is_power_of_two() && n >= 8, "length {n} unsupported");
    assert!(levels <= db4_levels(n), "too many levels");

    let mut approx = data.to_vec();
    let mut details: Vec<Vec<f64>> = Vec::with_capacity(levels);
    for _ in 0..levels {
        let (a, d) = forward_level(&approx);
        details.push(d);
        approx = a;
    }
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(&approx);
    for det in details.iter().rev() {
        out.extend_from_slice(det);
    }
    out
}

/// Inverse multi-level DB4 transform.
pub fn db4_inverse(coeffs: &[f64], levels: usize) -> Vec<f64> {
    let n = coeffs.len();
    assert!(n.is_power_of_two() && n >= 8, "length {n} unsupported");
    assert!(levels <= db4_levels(n), "too many levels");

    let approx_len = n >> levels;
    let mut approx = coeffs[..approx_len].to_vec();
    let mut offset = approx_len;
    for _ in 0..levels {
        let half = approx.len();
        let det = &coeffs[offset..offset + half];
        offset += half;
        approx = inverse_level(&approx, det);
    }
    approx
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn taps_satisfy_daubechies_identities() {
        let h = db4_taps();
        // Sum = √2 (DC gain), sum of squares = 1 (orthonormality).
        let sum: f64 = h.iter().sum();
        let sq: f64 = h.iter().map(|x| x * x).sum();
        assert!((sum - 2f64.sqrt()).abs() < 1e-12);
        assert!((sq - 1.0).abs() < 1e-12);
        // One vanishing moment of the wavelet on linear ramps:
        // Σ (−1)^k h[3−k] · k = 0 ⟺ 3h0 − 2h1 + h2 ... check directly.
        let g = [h[3], -h[2], h[1], -h[0]];
        let moment0: f64 = g.iter().sum();
        let moment1: f64 = g.iter().enumerate().map(|(k, v)| k as f64 * v).sum();
        assert!(moment0.abs() < 1e-12);
        assert!(moment1.abs() < 1e-12);
    }

    #[test]
    fn energy_preserved() {
        let x: Vec<f64> = (0..128)
            .map(|i| (i as f64 / 9.0).cos() * 3.0 + i as f64 * 0.01)
            .collect();
        let c = db4_forward(&x, db4_levels(128));
        let ex: f64 = x.iter().map(|v| v * v).sum();
        let ec: f64 = c.iter().map(|v| v * v).sum();
        assert!((ex - ec).abs() < 1e-8);
    }

    #[test]
    fn smooth_signal_details_smaller_than_haar() {
        // On a smooth periodic signal (periodic extension suits DB4),
        // DB4 detail energy should undercut Haar's, which is why the
        // proxy prefers it.
        let x: Vec<f64> = (0..256)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 * 4.0 / 256.0).sin() * 5.0)
            .collect();
        let db = db4_forward(&x, 1);
        let ha = crate::haar::haar_forward(&x, 1);
        let detail_energy = |c: &[f64]| c[128..].iter().map(|v| v * v).sum::<f64>();
        assert!(detail_energy(&db) < detail_energy(&ha));
    }

    #[test]
    fn levels_bounds() {
        assert_eq!(db4_levels(4), 0);
        assert_eq!(db4_levels(8), 1);
        assert_eq!(db4_levels(64), 4);
        assert_eq!(db4_levels(100), 0); // not a power of two
    }

    proptest! {
        #[test]
        fn perfect_reconstruction(
            raw in proptest::collection::vec(-100.0f64..100.0, 8..256),
            levels_frac in 0.0f64..1.0,
        ) {
            let n = raw.len().next_power_of_two().max(8);
            let mut x = raw.clone();
            let last = *x.last().unwrap();
            x.resize(n, last);
            let max_l = db4_levels(n);
            let levels = ((max_l as f64) * levels_frac).round() as usize;
            let c = db4_forward(&x, levels);
            let y = db4_inverse(&c, levels);
            for (a, b) in x.iter().zip(&y) {
                prop_assert!((a - b).abs() < 1e-8, "{} vs {}", a, b);
            }
        }
    }
}
