//! Multi-resolution graceful aging of archived batches.
//!
//! Paper §4: "If storage is constrained on each sensor, graceful aging of
//! archived data can be enabled using wavelet-based multi-resolution
//! techniques [10]." The ladder keeps only the Haar *approximation* band
//! of an old batch at increasing levels: each aging step halves the
//! stored footprint and coarsens the reconstruction by a factor of two in
//! time resolution.
//!
//! An [`AgedSummary`] is self-contained: it can be re-aged without access
//! to the original data, which is exactly what a mote does when the
//! archive fills.

use crate::haar::{haar_forward, haar_inverse, haar_levels, pad_pow2};
use crate::quant::{dequantize, pack_ints, quantize, unpack_ints};

/// A batch aged to a given resolution level.
#[derive(Clone, Debug, PartialEq)]
pub struct AgedSummary {
    /// Aging level: the stored band is the level-`level` approximation.
    pub level: usize,
    /// Number of samples in the original batch.
    pub original_len: usize,
    /// Quantizer step used for the stored coefficients.
    pub quant_step: f64,
    /// Packed, quantized approximation coefficients.
    packed: Vec<u8>,
}

/// Builder/config for aging operations.
#[derive(Clone, Debug)]
pub struct AgingLadder {
    /// Quantizer step for stored approximation coefficients.
    pub quant_step: f64,
}

impl Default for AgingLadder {
    fn default() -> Self {
        AgingLadder { quant_step: 0.05 }
    }
}

impl AgingLadder {
    /// Creates a ladder with the given coefficient quantizer step.
    pub fn new(quant_step: f64) -> Self {
        assert!(quant_step > 0.0 && quant_step.is_finite());
        AgingLadder { quant_step }
    }

    /// Summarizes a fresh batch at aging `level` (level 0 keeps full
    /// resolution, each +1 halves the footprint).
    pub fn summarize(&self, samples: &[f64], level: usize) -> AgedSummary {
        let padded = pad_pow2(samples);
        let max_level = haar_levels(padded.len());
        let level = level.min(max_level);
        let coeffs = haar_forward(&padded, level);
        let approx = &coeffs[..padded.len() >> level];
        let packed = pack_ints(&quantize(approx, self.quant_step));
        AgedSummary {
            level,
            original_len: samples.len(),
            quant_step: self.quant_step,
            packed,
        }
    }

    /// Ages an existing summary one more level without the original data.
    ///
    /// The stored band is a Haar approximation, so one more forward level
    /// over it (dropping the produced detail) yields exactly the next
    /// ladder rung. Saturates at the coarsest level (a single value).
    pub fn age(&self, summary: &AgedSummary) -> AgedSummary {
        let approx = summary.approx_coeffs();
        if approx.len() <= 1 {
            return summary.clone();
        }
        let next = haar_forward(&approx, 1);
        let keep = &next[..approx.len() / 2];
        let packed = pack_ints(&quantize(keep, self.quant_step));
        AgedSummary {
            level: summary.level + 1,
            original_len: summary.original_len,
            quant_step: self.quant_step,
            packed,
        }
    }
}

impl AgedSummary {
    /// Stored footprint in bytes.
    pub fn byte_len(&self) -> usize {
        self.packed.len()
    }

    /// Decoded approximation coefficients.
    fn approx_coeffs(&self) -> Vec<f64> {
        let qs = unpack_ints(&self.packed).expect("summary packed by this module");
        dequantize(&qs, self.quant_step)
    }

    /// Reconstructs the batch at original length. Detail bands are gone,
    /// so the result is a level-`level` smoothing of the original.
    pub fn reconstruct(&self) -> Vec<f64> {
        let padded_len = self.original_len.max(1).next_power_of_two();
        let approx = self.approx_coeffs();
        let mut coeffs = vec![0.0; padded_len];
        coeffs[..approx.len()].copy_from_slice(&approx);
        let mut out = haar_inverse(&coeffs, self.level);
        out.truncate(self.original_len);
        out
    }

    /// Root-mean-square reconstruction error against the original batch.
    pub fn rmse(&self, original: &[f64]) -> f64 {
        let back = self.reconstruct();
        if original.is_empty() {
            return 0.0;
        }
        let se: f64 = original
            .iter()
            .zip(&back)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        (se / original.len() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(n: usize) -> Vec<f64> {
        // Diurnal-ish signal with a sharp event in the middle.
        (0..n)
            .map(|i| {
                let t = i as f64;
                let mut v = 18.0 + 6.0 * (t * 0.012).sin() + 0.2 * (t * 0.9).sin();
                if (n / 2..n / 2 + 5).contains(&i) {
                    v += 10.0;
                }
                v
            })
            .collect()
    }

    #[test]
    fn level_zero_is_near_lossless() {
        let xs = trace(256);
        let ladder = AgingLadder::new(0.01);
        let s = ladder.summarize(&xs, 0);
        assert!(s.rmse(&xs) < 0.01);
    }

    #[test]
    fn footprint_halves_per_level() {
        let xs = trace(1024);
        let ladder = AgingLadder::default();
        let sizes: Vec<usize> = (0..6)
            .map(|l| ladder.summarize(&xs, l).byte_len())
            .collect();
        for w in sizes.windows(2) {
            assert!(
                (w[1] as f64) < 0.75 * w[0] as f64,
                "sizes not shrinking: {sizes:?}"
            );
        }
    }

    #[test]
    fn error_grows_monotonically_with_level() {
        let xs = trace(1024);
        let ladder = AgingLadder::default();
        let errs: Vec<f64> = (0..8).map(|l| ladder.summarize(&xs, l).rmse(&xs)).collect();
        for w in errs.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "errors not monotone: {errs:?}");
        }
        // Coarse levels still capture the diurnal mean.
        assert!(errs[7] < 8.0, "coarse error unreasonable: {errs:?}");
    }

    #[test]
    fn incremental_aging_matches_direct_summarization() {
        let xs = trace(512);
        let ladder = AgingLadder::new(0.001); // fine quantization
        let direct = ladder.summarize(&xs, 3);
        let mut incremental = ladder.summarize(&xs, 0);
        for _ in 0..3 {
            incremental = ladder.age(&incremental);
        }
        assert_eq!(incremental.level, 3);
        // Same reconstruction up to quantization noise.
        let a = direct.reconstruct();
        let b = incremental.reconstruct();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 0.05, "{x} vs {y}");
        }
    }

    #[test]
    fn aging_saturates_at_single_coefficient() {
        let xs = trace(64);
        let ladder = AgingLadder::default();
        let mut s = ladder.summarize(&xs, 0);
        for _ in 0..20 {
            s = ladder.age(&s);
        }
        // level is capped once a single coefficient remains (64 = 2^6).
        assert!(s.level <= 6, "level {}", s.level);
        let rec = s.reconstruct();
        assert_eq!(rec.len(), 64);
        // The single surviving coefficient reconstructs the batch mean.
        let mean = xs.iter().sum::<f64>() / 64.0;
        assert!((rec[0] - mean).abs() < 0.5, "{} vs {mean}", rec[0]);
    }

    #[test]
    fn reconstruct_handles_non_pow2_lengths() {
        let xs = trace(300);
        let ladder = AgingLadder::default();
        let s = ladder.summarize(&xs, 2);
        assert_eq!(s.reconstruct().len(), 300);
    }

    #[test]
    fn empty_batch() {
        let ladder = AgingLadder::default();
        let s = ladder.summarize(&[], 3);
        assert_eq!(s.reconstruct().len(), 0);
        assert_eq!(s.rmse(&[]), 0.0);
    }
}
