//! End-to-end lossy batch codec: DWT → (optional) denoise → quantize →
//! pack.
//!
//! This is the compression a PRESTO sensor applies to a batch before
//! transmission. The proxy decodes with the same parameters (which it
//! chose and pushed down during query–sensor matching). The quantizer
//! step is the precision knob: a query class tolerating ±0.5 °C lets the
//! proxy configure `quant_step ≈ 1.0`, shrinking payloads accordingly.

use crate::denoise::{denoise_in_place, DenoiseMode};
use crate::haar::{
    haar_forward, haar_forward_in_place, haar_inverse, haar_inverse_in_place, haar_levels,
    pad_pow2, pad_pow2_into,
};
use crate::quant::{dequantize, pack_ints, quantize, quantize_into, unpack_ints};

/// Codec configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CodecParams {
    /// Decomposition depth; `None` selects the maximum for the batch size.
    pub levels: Option<usize>,
    /// Uniform quantizer step in the coefficient domain. Larger is
    /// coarser and cheaper. Must be positive.
    pub quant_step: f64,
    /// Optional denoising pass before quantization.
    pub denoise: Option<DenoiseMode>,
}

impl CodecParams {
    /// Lossless-leaning default: fine quantization, no denoising.
    pub fn fine() -> Self {
        CodecParams {
            levels: None,
            quant_step: 0.01,
            denoise: None,
        }
    }

    /// The Figure 2 "wavelet denoising" configuration: soft-threshold
    /// denoising plus moderate quantization.
    pub fn denoising() -> Self {
        CodecParams {
            levels: None,
            quant_step: 0.05,
            denoise: Some(DenoiseMode::Soft),
        }
    }

    /// Derives a codec whose reconstruction error is empirically within a
    /// sample-domain tolerance: coefficient errors of `step/2` propagate
    /// to roughly `step/2` per sample through the orthonormal transform.
    pub fn for_tolerance(tolerance: f64) -> Self {
        CodecParams {
            levels: None,
            quant_step: (tolerance.max(1e-6)) * 0.8,
            denoise: None,
        }
    }
}

/// A compressed batch.
#[derive(Clone, Debug, PartialEq)]
pub struct Compressed {
    /// Self-describing payload (header + packed coefficients).
    pub payload: Vec<u8>,
    /// Number of samples in the original batch.
    pub original_len: usize,
}

impl Compressed {
    /// Size on the wire, in bytes.
    pub fn byte_len(&self) -> usize {
        self.payload.len()
    }
}

/// Reusable transform buffers for the allocation-free encode paths.
///
/// A sensor flushes a batch every few minutes for the lifetime of the
/// deployment; holding one scratch per node means the pad/transform/
/// quantize pipeline touches no allocator after the first flush (the
/// buffers grow once to the largest batch seen and stay there).
#[derive(Clone, Debug, Default)]
pub struct EncodeScratch {
    /// Padded signal; becomes the coefficient vector in place.
    coeffs: Vec<f64>,
    /// Ping-pong buffer for the in-place transforms.
    tmp: Vec<f64>,
    /// Quantized coefficient stream.
    qs: Vec<i64>,
}

/// The batch codec.
#[derive(Clone, Debug)]
pub struct Codec {
    params: CodecParams,
}

impl Codec {
    /// Creates a codec; panics if the quantizer step is not positive.
    pub fn new(params: CodecParams) -> Self {
        assert!(
            params.quant_step > 0.0 && params.quant_step.is_finite(),
            "quant_step must be positive"
        );
        Codec { params }
    }

    /// The configured parameters.
    pub fn params(&self) -> &CodecParams {
        &self.params
    }

    fn depth_for(&self, padded_len: usize) -> usize {
        let max = haar_levels(padded_len);
        match self.params.levels {
            Some(l) => l.min(max),
            None => max,
        }
    }

    /// Compresses a batch of samples.
    ///
    /// Payload layout: `varint(original_len) · varint(levels) ·
    /// f32(quant_step) · packed coefficients`.
    pub fn compress(&self, samples: &[f64]) -> Compressed {
        let padded = pad_pow2(samples);
        let levels = self.depth_for(padded.len());
        let mut coeffs = haar_forward(&padded, levels);
        if let Some(mode) = self.params.denoise {
            denoise_in_place(&mut coeffs, levels, mode);
        }
        let qs = quantize(&coeffs, self.params.quant_step);
        Compressed {
            payload: self.encode_payload(samples.len(), levels, &qs),
            original_len: samples.len(),
        }
    }

    /// [`Codec::compress`] through caller-owned scratch buffers: no
    /// transform allocation after the scratch has warmed up. Produces a
    /// byte-identical payload to [`Codec::compress`].
    pub fn compress_into(&self, samples: &[f64], scratch: &mut EncodeScratch) -> Compressed {
        let (levels, _) = self.transform_into(samples, scratch);
        quantize_into(&scratch.coeffs, self.params.quant_step, &mut scratch.qs);
        Compressed {
            payload: self.encode_payload(samples.len(), levels, &scratch.qs),
            original_len: samples.len(),
        }
    }

    /// Compresses a batch and returns the payload *together with the
    /// reconstruction the decoder will produce*, in one pass: the
    /// quantized coefficients are snapped to the quantizer grid and
    /// inverse-transformed directly, instead of re-parsing the payload
    /// through [`Codec::decompress`]. This is the sensor's `flush_batch`
    /// path — the round-trip decode there was pure waste.
    pub fn compress_reconstruct(
        &self,
        samples: &[f64],
        scratch: &mut EncodeScratch,
    ) -> (Compressed, Vec<f64>) {
        let (levels, padded_len) = self.transform_into(samples, scratch);
        quantize_into(&scratch.coeffs, self.params.quant_step, &mut scratch.qs);
        let payload = self.encode_payload(samples.len(), levels, &scratch.qs);
        // Reconstruct from the quantized stream the payload carries,
        // using the f32-rounded step the header stores — this is exactly
        // the grid [`Codec::decompress`] snaps to.
        let wire_step = self.params.quant_step as f32 as f64;
        scratch.coeffs.clear();
        scratch
            .coeffs
            .extend(scratch.qs.iter().map(|&q| q as f64 * wire_step));
        debug_assert_eq!(scratch.coeffs.len(), padded_len);
        haar_inverse_in_place(&mut scratch.coeffs, levels, &mut scratch.tmp);
        let mut recon = scratch.coeffs.clone();
        recon.truncate(samples.len());
        (
            Compressed {
                payload,
                original_len: samples.len(),
            },
            recon,
        )
    }

    /// Pads + forward-transforms + denoises `samples` into
    /// `scratch.coeffs`, returning `(levels, padded_len)`.
    fn transform_into(&self, samples: &[f64], scratch: &mut EncodeScratch) -> (usize, usize) {
        pad_pow2_into(samples, &mut scratch.coeffs);
        let padded_len = scratch.coeffs.len();
        let levels = self.depth_for(padded_len);
        haar_forward_in_place(&mut scratch.coeffs, levels, &mut scratch.tmp);
        if let Some(mode) = self.params.denoise {
            denoise_in_place(&mut scratch.coeffs, levels, mode);
        }
        (levels, padded_len)
    }

    fn encode_payload(&self, original_len: usize, levels: usize, qs: &[i64]) -> Vec<u8> {
        let mut payload = Vec::new();
        push_varint(&mut payload, original_len as u64);
        push_varint(&mut payload, levels as u64);
        payload.extend_from_slice(&(self.params.quant_step as f32).to_le_bytes());
        payload.extend_from_slice(&pack_ints(qs));
        payload
    }

    /// Decompresses a payload produced by [`Codec::compress`] (any codec
    /// instance can decode any payload — parameters ride in the header).
    ///
    /// Returns `None` on malformed input.
    pub fn decompress(compressed: &Compressed) -> Option<Vec<f64>> {
        let bytes = &compressed.payload;
        let mut pos = 0usize;
        let original_len = read_varint(bytes, &mut pos)? as usize;
        let levels = read_varint(bytes, &mut pos)? as usize;
        if pos + 4 > bytes.len() {
            return None;
        }
        let step = f32::from_le_bytes(bytes[pos..pos + 4].try_into().ok()?) as f64;
        if !step.is_finite() || step <= 0.0 {
            return None;
        }
        pos += 4;

        let qs = unpack_ints(&bytes[pos..])?;
        let padded_len = original_len.max(1).next_power_of_two();
        if qs.len() != padded_len || levels > haar_levels(padded_len) {
            return None;
        }
        let coeffs = dequantize(&qs, step);
        let mut samples = haar_inverse(&coeffs, levels);
        samples.truncate(original_len);
        Some(samples)
    }

    /// Compresses and reports `(payload_bytes, max_abs_error, rmse)` —
    /// the tuple the experiment harnesses need.
    pub fn compress_with_stats(&self, samples: &[f64]) -> (Compressed, f64, f64) {
        let c = self.compress(samples);
        let back = Self::decompress(&c).expect("own payload decodes");
        let mut max_err = 0.0f64;
        let mut se = 0.0;
        for (a, b) in samples.iter().zip(&back) {
            let e = (a - b).abs();
            max_err = max_err.max(e);
            se += e * e;
        }
        let rmse = if samples.is_empty() {
            0.0
        } else {
            (se / samples.len() as f64).sqrt()
        };
        (c, max_err, rmse)
    }
}

fn push_varint(out: &mut Vec<u8>, mut u: u64) {
    loop {
        let byte = (u & 0x7f) as u8;
        u >>= 7;
        if u == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut u = 0u64;
    let mut shift = 0;
    loop {
        let &b = bytes.get(*pos)?;
        *pos += 1;
        u |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Some(u);
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn diurnal(n: usize) -> Vec<f64> {
        // A smooth temperature-like batch with mild deterministic jitter.
        (0..n)
            .map(|i| {
                let t = i as f64;
                20.0 + 5.0 * (t * 0.01).sin() + 0.3 * (t * 1.7).sin()
            })
            .collect()
    }

    #[test]
    fn roundtrip_within_quantizer_error() {
        let xs = diurnal(500);
        let codec = Codec::new(CodecParams::fine());
        let (c, max_err, rmse) = codec.compress_with_stats(&xs);
        assert!(max_err < 0.05, "max_err {max_err}");
        assert!(rmse < 0.02, "rmse {rmse}");
        assert_eq!(Codec::decompress(&c).unwrap().len(), 500);
    }

    #[test]
    fn coarser_step_means_smaller_payload() {
        let xs = diurnal(1024);
        let fine = Codec::new(CodecParams {
            quant_step: 0.01,
            ..CodecParams::fine()
        });
        let coarse = Codec::new(CodecParams {
            quant_step: 1.0,
            ..CodecParams::fine()
        });
        assert!(coarse.compress(&xs).byte_len() < fine.compress(&xs).byte_len());
    }

    #[test]
    fn denoising_shrinks_payload_on_noisy_data() {
        // Deterministic noise via LCG.
        let mut state = 99u64;
        let mut noise = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64 - 1.0) * 0.5
        };
        let xs: Vec<f64> = diurnal(2048).iter().map(|v| v + noise()).collect();
        let raw = Codec::new(CodecParams {
            denoise: None,
            quant_step: 0.05,
            levels: None,
        });
        let den = Codec::new(CodecParams::denoising());
        let raw_len = raw.compress(&xs).byte_len();
        let den_len = den.compress(&xs).byte_len();
        assert!(
            (den_len as f64) < 0.7 * raw_len as f64,
            "denoised {den_len} vs raw {raw_len}"
        );
    }

    #[test]
    fn longer_batches_compress_better_per_sample() {
        // Figure 2's claim (b): more batching → better compression.
        let per_sample = |n: usize| {
            let xs = diurnal(n);
            let codec = Codec::new(CodecParams::denoising());
            codec.compress(&xs).byte_len() as f64 / n as f64
        };
        assert!(per_sample(2048) < per_sample(32));
    }

    #[test]
    fn decode_is_parameter_free() {
        let xs = diurnal(100);
        let c = Codec::new(CodecParams {
            levels: Some(3),
            quant_step: 0.2,
            denoise: Some(DenoiseMode::Hard),
        })
        .compress(&xs);
        // Any decoder can decode: parameters are in the header.
        let back = Codec::decompress(&c).unwrap();
        assert_eq!(back.len(), 100);
    }

    #[test]
    fn malformed_payloads_rejected() {
        assert_eq!(
            Codec::decompress(&Compressed {
                payload: vec![],
                original_len: 0
            }),
            None
        );
        let mut c = Codec::new(CodecParams::fine()).compress(&diurnal(64));
        c.payload.truncate(4);
        assert_eq!(Codec::decompress(&c), None);
        // Corrupt the coefficient count by appending garbage values.
        let mut c2 = Codec::new(CodecParams::fine()).compress(&diurnal(64));
        c2.payload.extend_from_slice(&[0x02, 0x02, 0x02, 0x02]);
        assert_eq!(Codec::decompress(&c2), None);
    }

    #[test]
    fn empty_batch_roundtrips() {
        let codec = Codec::new(CodecParams::fine());
        let c = codec.compress(&[]);
        assert_eq!(Codec::decompress(&c).unwrap(), Vec::<f64>::new());
    }

    #[test]
    fn tolerance_constructor_meets_tolerance() {
        let xs = diurnal(512);
        for tol in [0.1, 0.5, 2.0] {
            let codec = Codec::new(CodecParams::for_tolerance(tol));
            let (_, max_err, _) = codec.compress_with_stats(&xs);
            assert!(max_err <= tol, "tol {tol} err {max_err}");
        }
    }

    #[test]
    fn scratch_compress_matches_allocating_compress() {
        let mut scratch = EncodeScratch::default();
        for n in [0usize, 1, 5, 64, 130, 500] {
            let xs = diurnal(n);
            for params in [
                CodecParams::fine(),
                CodecParams::denoising(),
                CodecParams::for_tolerance(0.3),
            ] {
                let codec = Codec::new(params);
                let a = codec.compress(&xs);
                let b = codec.compress_into(&xs, &mut scratch);
                assert_eq!(a, b, "n={n} params={params:?}");
            }
        }
    }

    #[test]
    fn compress_reconstruct_matches_decompress_round_trip() {
        let mut scratch = EncodeScratch::default();
        for n in [1usize, 37, 128, 500] {
            let xs = diurnal(n);
            let codec = Codec::new(CodecParams::for_tolerance(0.2));
            let (c, recon) = codec.compress_reconstruct(&xs, &mut scratch);
            let via_decode = Codec::decompress(&c).expect("own payload decodes");
            assert_eq!(recon.len(), via_decode.len());
            for (a, b) in recon.iter().zip(&via_decode) {
                assert!((a - b).abs() < 1e-9, "{a} vs {b}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "quant_step must be positive")]
    fn rejects_bad_step() {
        Codec::new(CodecParams {
            levels: None,
            quant_step: -1.0,
            denoise: None,
        });
    }

    proptest! {
        #[test]
        fn roundtrip_any_signal(
            xs in proptest::collection::vec(-50.0f64..50.0, 0..300),
            step in 0.01f64..1.0,
        ) {
            let codec = Codec::new(CodecParams { levels: None, quant_step: step, denoise: None });
            let c = codec.compress(&xs);
            let back = Codec::decompress(&c).unwrap();
            prop_assert_eq!(back.len(), xs.len());
            // Without denoising, error stays within a few quantizer steps
            // (coefficient errors accumulate logarithmically with depth).
            let depth = crate::haar::haar_levels(xs.len().max(1).next_power_of_two());
            let bound = step * (depth as f64 + 2.0);
            for (a, b) in xs.iter().zip(&back) {
                prop_assert!((a - b).abs() <= bound, "{} vs {} (bound {})", a, b, bound);
            }
        }
    }
}
