//! Uniform quantization and byte packing of coefficient streams.
//!
//! The codec's wire format is deliberately simple enough for a mote to
//! encode: uniform quantization (error ≤ step/2 per coefficient), zigzag
//! varints for the surviving values, and run-length tokens for the zero
//! runs that denoising produces. No tables, no floating-point state.
//!
//! Wire grammar (byte-aligned):
//!
//! ```text
//! stream  := token*
//! token   := 0x00 varint(run_len)        ; run_len zeros
//!          | varint(zigzag(v)) (v ≠ 0)   ; one nonzero value
//! ```
//!
//! `zigzag(v)` for nonzero `v` is always ≥ 1, so the `0x00` prefix is
//! unambiguous.

/// Quantizes values with a uniform step; the reconstruction error of each
/// value is at most `step / 2`.
pub fn quantize(values: &[f64], step: f64) -> Vec<i64> {
    assert!(step > 0.0 && step.is_finite(), "step must be positive");
    values.iter().map(|v| (v / step).round() as i64).collect()
}

/// Inverse of [`quantize`].
pub fn dequantize(qs: &[i64], step: f64) -> Vec<f64> {
    qs.iter().map(|&q| q as f64 * step).collect()
}

/// [`quantize`] into a caller-owned buffer (cleared first), so repeated
/// encodes reuse one allocation.
pub fn quantize_into(values: &[f64], step: f64, out: &mut Vec<i64>) {
    assert!(step > 0.0 && step.is_finite(), "step must be positive");
    out.clear();
    out.extend(values.iter().map(|v| (v / step).round() as i64));
}

/// Quantize-then-dequantize in place: replaces each value with its
/// reconstruction on the quantizer grid, without materializing the
/// integer stream. Used by single-pass encode-and-reconstruct paths.
pub fn requantize_in_place(values: &mut [f64], step: f64) {
    assert!(step > 0.0 && step.is_finite(), "step must be positive");
    for v in values.iter_mut() {
        *v = (*v / step).round() * step;
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

fn push_varint(out: &mut Vec<u8>, mut u: u64) {
    loop {
        let byte = (u & 0x7f) as u8;
        u >>= 7;
        if u == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut u = 0u64;
    let mut shift = 0;
    loop {
        let &b = bytes.get(*pos)?;
        *pos += 1;
        u |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Some(u);
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
}

/// Packs a quantized integer stream into bytes (zigzag varints + zero RLE).
pub fn pack_ints(qs: &[i64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(qs.len());
    let mut i = 0;
    while i < qs.len() {
        if qs[i] == 0 {
            let mut run = 1usize;
            while i + run < qs.len() && qs[i + run] == 0 {
                run += 1;
            }
            out.push(0x00);
            push_varint(&mut out, run as u64);
            i += run;
        } else {
            push_varint(&mut out, zigzag(qs[i]));
            i += 1;
        }
    }
    out
}

/// Unpacks a byte stream produced by [`pack_ints`].
///
/// Returns `None` on malformed input (truncated varint, zero-length run).
pub fn unpack_ints(bytes: &[u8]) -> Option<Vec<i64>> {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        let u = read_varint(bytes, &mut pos)?;
        if u == 0 {
            let run = read_varint(bytes, &mut pos)?;
            if run == 0 {
                return None;
            }
            out.extend(std::iter::repeat_n(0i64, run as usize));
        } else {
            out.push(unzigzag(u));
        }
    }
    Some(out)
}

/// Approximate cycle cost of encoding `n` quantized coefficients on a
/// mote-class CPU (used for CPU energy charging): ~30 cycles per value.
pub fn pack_cycle_cost(n: usize) -> u64 {
    n as u64 * 30
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn quantize_error_bounded_by_half_step() {
        let xs = [1.24, -7.77, 0.0, 3.999, 1e4];
        let step = 0.5;
        let back = dequantize(&quantize(&xs, step), step);
        for (x, y) in xs.iter().zip(&back) {
            assert!((x - y).abs() <= step / 2.0 + 1e-12, "{x} vs {y}");
        }
    }

    #[test]
    fn zigzag_roundtrip_edges() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN + 1, 42, -42] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn zero_runs_compress_well() {
        let mut qs = vec![0i64; 1000];
        qs[0] = 5;
        qs[999] = -3;
        let packed = pack_ints(&qs);
        // 5, then 998 zeros (1 token + 2-byte varint), then −3: ≤ 6 bytes.
        assert!(packed.len() <= 6, "{} bytes", packed.len());
        assert_eq!(unpack_ints(&packed).unwrap(), qs);
    }

    #[test]
    fn dense_values_cost_about_a_varint_each() {
        let qs: Vec<i64> = (1..=100).collect();
        let packed = pack_ints(&qs);
        assert!(packed.len() <= 200);
        assert_eq!(unpack_ints(&packed).unwrap(), qs);
    }

    #[test]
    fn malformed_inputs_rejected() {
        // Truncated varint: continuation bit set on final byte.
        assert_eq!(unpack_ints(&[0x80]), None);
        // Zero-run token with zero length.
        assert_eq!(unpack_ints(&[0x00, 0x00]), None);
        // Truncated after run marker.
        assert_eq!(unpack_ints(&[0x00]), None);
    }

    #[test]
    fn empty_stream_roundtrips() {
        assert_eq!(pack_ints(&[]), Vec::<u8>::new());
        assert_eq!(unpack_ints(&[]).unwrap(), Vec::<i64>::new());
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn quantize_rejects_zero_step() {
        quantize(&[1.0], 0.0);
    }

    proptest! {
        #[test]
        fn pack_roundtrip(qs in proptest::collection::vec(-100_000i64..100_000, 0..512)) {
            let packed = pack_ints(&qs);
            prop_assert_eq!(unpack_ints(&packed).unwrap(), qs);
        }

        #[test]
        fn quantize_roundtrip_error_bound(
            xs in proptest::collection::vec(-1e6f64..1e6, 1..128),
            step in 0.01f64..10.0,
        ) {
            let back = dequantize(&quantize(&xs, step), step);
            for (x, y) in xs.iter().zip(&back) {
                prop_assert!((x - y).abs() <= step / 2.0 + 1e-9);
            }
        }

        #[test]
        fn sparse_streams_beat_raw_encoding(zeros in 100usize..1000) {
            let mut qs = vec![0i64; zeros];
            qs[zeros / 2] = 7;
            let packed = pack_ints(&qs);
            prop_assert!(packed.len() < zeros / 10);
        }
    }
}
