//! Orthonormal Haar discrete wavelet transform.
//!
//! The Haar transform is the sensor-side workhorse: a full multi-level
//! decomposition of an `n`-sample batch takes ~2n additions and
//! multiplications, well within the paper's "cheap computation"
//! envelope, and it reconstructs exactly (up to floating-point rounding).
//!
//! Layout convention: for a length-`n` (power of two) signal decomposed
//! over `L` levels, the coefficient vector is
//! `[approx(L) | detail(L) | detail(L-1) | ... | detail(1)]`, i.e. the
//! coarsest approximation first, then details from coarsest to finest.
//! This ordering makes the aging ladder a simple prefix truncation.

use std::f64::consts::SQRT_2;

/// Maximum number of full decomposition levels for a length-`n` signal
/// (`n` need not be a power of two; levels apply to the padded length).
pub fn haar_levels(n: usize) -> usize {
    if n <= 1 {
        0
    } else {
        (n.next_power_of_two()).trailing_zeros() as usize
    }
}

/// Pads a signal to the next power of two by repeating the final sample
/// (edge padding keeps detail coefficients near zero at the boundary).
pub fn pad_pow2(data: &[f64]) -> Vec<f64> {
    let n = data.len().max(1).next_power_of_two();
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(data);
    let last = data.last().copied().unwrap_or(0.0);
    out.resize(n, last);
    out
}

/// Forward multi-level Haar transform over `levels` levels.
///
/// `data.len()` must be a power of two and `levels` at most
/// `haar_levels(data.len())`. Returns the coefficient vector in the
/// layout documented at module level.
pub fn haar_forward(data: &[f64], levels: usize) -> Vec<f64> {
    let n = data.len();
    assert!(n.is_power_of_two(), "length {n} must be a power of two");
    assert!(levels <= haar_levels(n), "too many levels");

    let mut approx = data.to_vec();
    // details[k] holds the detail band produced at level k+1 (finest first).
    let mut details: Vec<Vec<f64>> = Vec::with_capacity(levels);
    for _ in 0..levels {
        let half = approx.len() / 2;
        let mut next = Vec::with_capacity(half);
        let mut det = Vec::with_capacity(half);
        for i in 0..half {
            let a = approx[2 * i];
            let b = approx[2 * i + 1];
            next.push((a + b) / SQRT_2);
            det.push((a - b) / SQRT_2);
        }
        details.push(det);
        approx = next;
    }

    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(&approx);
    for det in details.iter().rev() {
        out.extend_from_slice(det);
    }
    out
}

/// Pads a signal to the next power of two into a caller-owned buffer
/// (cleared first), so repeated batch encodes reuse one allocation.
pub fn pad_pow2_into(data: &[f64], out: &mut Vec<f64>) {
    let n = data.len().max(1).next_power_of_two();
    out.clear();
    out.reserve(n);
    out.extend_from_slice(data);
    let last = data.last().copied().unwrap_or(0.0);
    out.resize(n, last);
}

/// Forward multi-level Haar transform, in place over `buf`, using `tmp`
/// as scratch. Produces the same layout as [`haar_forward`] without any
/// per-level allocation: `tmp` grows once to `buf.len()` and is reused
/// across calls.
///
/// At each level the prefix of length `len` is rewritten as
/// `[approx | detail]`; the detail half is already in its final
/// position, so the recursion only ever touches a shrinking prefix.
pub fn haar_forward_in_place(buf: &mut [f64], levels: usize, tmp: &mut Vec<f64>) {
    let n = buf.len();
    assert!(n.is_power_of_two(), "length {n} must be a power of two");
    assert!(levels <= haar_levels(n), "too many levels");
    tmp.resize(n, 0.0);
    let mut len = n;
    for _ in 0..levels {
        let half = len / 2;
        for i in 0..half {
            let a = buf[2 * i];
            let b = buf[2 * i + 1];
            tmp[i] = (a + b) / SQRT_2;
            tmp[half + i] = (a - b) / SQRT_2;
        }
        buf[..len].copy_from_slice(&tmp[..len]);
        len = half;
    }
}

/// Inverse multi-level Haar transform, in place over `buf`, using `tmp`
/// as scratch; exact inverse of [`haar_forward_in_place`] with the same
/// `levels`.
pub fn haar_inverse_in_place(buf: &mut [f64], levels: usize, tmp: &mut Vec<f64>) {
    let n = buf.len();
    assert!(n.is_power_of_two(), "length {n} must be a power of two");
    assert!(levels <= haar_levels(n), "too many levels");
    tmp.resize(n, 0.0);
    let mut half = n >> levels;
    for _ in 0..levels {
        let len = half * 2;
        for i in 0..half {
            let a = buf[i];
            let d = buf[half + i];
            tmp[2 * i] = (a + d) / SQRT_2;
            tmp[2 * i + 1] = (a - d) / SQRT_2;
        }
        buf[..len].copy_from_slice(&tmp[..len]);
        half = len;
    }
}

/// Inverse multi-level Haar transform; exact inverse of [`haar_forward`]
/// with the same `levels`.
pub fn haar_inverse(coeffs: &[f64], levels: usize) -> Vec<f64> {
    let n = coeffs.len();
    assert!(n.is_power_of_two(), "length {n} must be a power of two");
    assert!(levels <= haar_levels(n), "too many levels");

    let approx_len = n >> levels;
    let mut approx = coeffs[..approx_len].to_vec();
    let mut offset = approx_len;
    for _ in 0..levels {
        let half = approx.len();
        let det = &coeffs[offset..offset + half];
        offset += half;
        let mut next = Vec::with_capacity(half * 2);
        for i in 0..half {
            let a = approx[i];
            let d = det[i];
            next.push((a + d) / SQRT_2);
            next.push((a - d) / SQRT_2);
        }
        approx = next;
    }
    approx
}

/// Splits a coefficient vector into `(approx, details_coarse_to_fine)`
/// views, given the decomposition depth.
pub fn band_ranges(
    n: usize,
    levels: usize,
) -> (std::ops::Range<usize>, Vec<std::ops::Range<usize>>) {
    assert!(n.is_power_of_two());
    let approx_len = n >> levels;
    let approx = 0..approx_len;
    let mut bands = Vec::with_capacity(levels);
    let mut offset = approx_len;
    let mut len = approx_len;
    for _ in 0..levels {
        bands.push(offset..offset + len);
        offset += len;
        len *= 2;
    }
    (approx, bands)
}

/// Number of CPU cycles a Mica2-class microcontroller spends on a full
/// `levels`-deep forward transform of `n` samples — used for CPU energy
/// charging. Roughly 2 multiply-accumulate pairs per sample pair per
/// level, at ~40 cycles per floating-point-emulated MAC.
pub fn forward_cycle_cost(n: usize, levels: usize) -> u64 {
    let mut cycles = 0u64;
    let mut len = n;
    for _ in 0..levels {
        cycles += (len as u64 / 2) * 2 * 40;
        len /= 2;
    }
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn single_level_matches_hand_computation() {
        let x = [4.0, 2.0, 5.0, 5.0];
        let c = haar_forward(&x, 1);
        // Approx: (4+2)/√2, (5+5)/√2; detail: (4−2)/√2, 0.
        assert_close(&c, &[6.0 / SQRT_2, 10.0 / SQRT_2, 2.0 / SQRT_2, 0.0], 1e-12);
    }

    #[test]
    fn full_depth_constant_signal_concentrates_energy() {
        let x = vec![3.0; 8];
        let c = haar_forward(&x, 3);
        // All energy in the single approximation coefficient: 3·√8.
        assert!((c[0] - 3.0 * 8f64.sqrt()).abs() < 1e-12);
        for d in &c[1..] {
            assert!(d.abs() < 1e-12);
        }
    }

    #[test]
    fn transform_preserves_energy() {
        // Orthonormality: ‖x‖² = ‖c‖².
        let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.3).sin() * 5.0).collect();
        let c = haar_forward(&x, 6);
        let ex: f64 = x.iter().map(|v| v * v).sum();
        let ec: f64 = c.iter().map(|v| v * v).sum();
        assert!((ex - ec).abs() < 1e-9);
    }

    #[test]
    fn band_ranges_partition_coefficients() {
        let (approx, bands) = band_ranges(32, 3);
        assert_eq!(approx, 0..4);
        assert_eq!(bands, vec![4..8, 8..16, 16..32]);
    }

    #[test]
    fn pad_pow2_repeats_last() {
        assert_eq!(pad_pow2(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0, 3.0]);
        assert_eq!(pad_pow2(&[]), vec![0.0]);
        assert_eq!(pad_pow2(&[7.0]), vec![7.0]);
    }

    #[test]
    fn levels_helper() {
        assert_eq!(haar_levels(1), 0);
        assert_eq!(haar_levels(2), 1);
        assert_eq!(haar_levels(1024), 10);
        assert_eq!(haar_levels(1000), 10); // padded to 1024
    }

    #[test]
    fn cycle_cost_grows_with_input() {
        assert!(forward_cycle_cost(1024, 10) > forward_cycle_cost(64, 6));
        assert_eq!(forward_cycle_cost(2, 0), 0);
    }

    #[test]
    fn in_place_forward_matches_allocating_forward() {
        let mut tmp = Vec::new();
        for n in [1usize, 2, 8, 64, 256] {
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() * 4.0 + 20.0).collect();
            let padded = pad_pow2(&x);
            for levels in 0..=haar_levels(padded.len()) {
                let reference = haar_forward(&padded, levels);
                let mut buf = padded.clone();
                haar_forward_in_place(&mut buf, levels, &mut tmp);
                assert_close(&buf, &reference, 1e-12);
                // And the in-place inverse restores the signal.
                haar_inverse_in_place(&mut buf, levels, &mut tmp);
                assert_close(&buf, &padded, 1e-9);
            }
        }
    }

    proptest! {
        #[test]
        fn perfect_reconstruction(
            raw in proptest::collection::vec(-1000.0f64..1000.0, 1..256),
            levels_frac in 0.0f64..1.0,
        ) {
            let x = pad_pow2(&raw);
            let max_l = haar_levels(x.len());
            let levels = ((max_l as f64) * levels_frac).round() as usize;
            let c = haar_forward(&x, levels);
            let y = haar_inverse(&c, levels);
            for (a, b) in x.iter().zip(&y) {
                prop_assert!((a - b).abs() < 1e-8, "{} vs {}", a, b);
            }
        }

        #[test]
        fn zero_levels_is_identity(raw in proptest::collection::vec(-10.0f64..10.0, 1..64)) {
            let x = pad_pow2(&raw);
            let c = haar_forward(&x, 0);
            prop_assert_eq!(c, x);
        }
    }
}
