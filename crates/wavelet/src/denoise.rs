//! Wavelet denoising (VisuShrink-style universal thresholding).
//!
//! Figure 2's "Batched Push w/ Wavelet Denoising" series relies on this:
//! detail coefficients whose magnitude is consistent with sensor noise are
//! shrunk to zero before quantization, so the entropy coder's zero
//! run-length pass collapses them to almost nothing. The threshold is the
//! classical universal threshold `σ·√(2·ln n)`, with `σ` estimated from
//! the median absolute deviation of the finest detail band (robust to the
//! signal itself).

use crate::haar::band_ranges;

/// Thresholding flavour.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DenoiseMode {
    /// Zero coefficients below the threshold, keep the rest untouched.
    Hard,
    /// Zero below threshold and shrink the rest toward zero by it.
    Soft,
}

/// Robust noise estimate: MAD of the finest detail band / 0.6745.
///
/// Returns 0.0 when the band is empty or perfectly regular.
pub fn noise_sigma(coeffs: &[f64], levels: usize) -> f64 {
    if levels == 0 {
        return 0.0;
    }
    let (_, bands) = band_ranges(coeffs.len(), levels);
    let finest = bands.last().expect("levels >= 1").clone();
    let mut mags: Vec<f64> = coeffs[finest].iter().map(|c| c.abs()).collect();
    if mags.is_empty() {
        return 0.0;
    }
    mags.sort_by(|a, b| a.partial_cmp(b).expect("finite coefficients"));
    let median = mags[mags.len() / 2];
    median / 0.6745
}

/// The universal threshold `σ·√(2·ln n)` for an `n`-coefficient signal.
pub fn universal_threshold(sigma: f64, n: usize) -> f64 {
    if n < 2 {
        return 0.0;
    }
    sigma * (2.0 * (n as f64).ln()).sqrt()
}

/// Applies (hard or soft) thresholding to the detail bands of a
/// coefficient vector in place; the approximation band is never touched.
///
/// Returns the number of detail coefficients zeroed.
pub fn denoise_in_place(coeffs: &mut [f64], levels: usize, mode: DenoiseMode) -> usize {
    if levels == 0 {
        return 0;
    }
    let sigma = noise_sigma(coeffs, levels);
    let t = universal_threshold(sigma, coeffs.len());
    threshold_in_place(coeffs, levels, t, mode)
}

/// Applies an explicit threshold `t` to the detail bands.
pub fn threshold_in_place(coeffs: &mut [f64], levels: usize, t: f64, mode: DenoiseMode) -> usize {
    if levels == 0 || t <= 0.0 {
        return 0;
    }
    let (_, bands) = band_ranges(coeffs.len(), levels);
    let mut zeroed = 0;
    for band in bands {
        for c in &mut coeffs[band] {
            if c.abs() <= t {
                if *c != 0.0 {
                    zeroed += 1;
                }
                *c = 0.0;
            } else if mode == DenoiseMode::Soft {
                *c -= t * c.signum();
            }
        }
    }
    zeroed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::haar::{haar_forward, haar_inverse, haar_levels};

    /// A deterministic noisy sinusoid: signal + pseudo-noise from a simple
    /// LCG so the test has no RNG dependency.
    fn noisy_signal(n: usize, noise_amp: f64) -> (Vec<f64>, Vec<f64>) {
        let mut state = 0x12345678u64;
        let mut noise = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 30) as f64 - 1.0) * noise_amp
        };
        let clean: Vec<f64> = (0..n).map(|i| (i as f64 * 0.05).sin() * 10.0).collect();
        let noisy = clean.iter().map(|c| c + noise()).collect();
        (clean, noisy)
    }

    #[test]
    fn sigma_estimate_tracks_noise_level() {
        let (_, noisy) = noisy_signal(512, 1.0);
        let levels = haar_levels(512);
        let c = haar_forward(&noisy, levels);
        let sigma = noise_sigma(&c, levels);
        // Uniform(−1,1) noise has σ ≈ 0.577; MAD estimate is rough but
        // must be the right order.
        assert!((0.2..1.2).contains(&sigma), "{sigma}");
    }

    #[test]
    fn denoising_reduces_error_vs_clean_signal() {
        let (clean, noisy) = noisy_signal(1024, 2.0);
        let levels = haar_levels(1024);
        let mut c = haar_forward(&noisy, levels);
        // Hard thresholding preserves the large signal coefficients
        // unshrunken, which keeps the comparison against the clean signal
        // clear-cut.
        let zeroed = denoise_in_place(&mut c, levels, DenoiseMode::Hard);
        assert!(zeroed > 512, "zeroed only {zeroed}");
        let den = haar_inverse(&c, levels);
        let rmse = |a: &[f64], b: &[f64]| {
            (a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / a.len() as f64).sqrt()
        };
        assert!(rmse(&den, &clean) < rmse(&noisy, &clean));
    }

    #[test]
    fn denoising_zeroes_most_details_of_noise_only_signal() {
        let (_, noisy) = noisy_signal(256, 1.0);
        let flat: Vec<f64> = noisy.iter().map(|x| x - 10.0 * (0.0f64).sin()).collect();
        let levels = haar_levels(256);
        let mut c = haar_forward(&flat, levels);
        let zeroed = denoise_in_place(&mut c, levels, DenoiseMode::Hard);
        // All but the approximation + a handful of outliers should go.
        assert!(zeroed as f64 > 0.8 * (256 - 1) as f64, "{zeroed}");
    }

    #[test]
    fn approximation_band_is_preserved() {
        let (_, noisy) = noisy_signal(128, 1.0);
        let levels = 3;
        let mut c = haar_forward(&noisy, levels);
        let approx_before = c[..128 >> 3].to_vec();
        denoise_in_place(&mut c, levels, DenoiseMode::Soft);
        assert_eq!(&c[..128 >> 3], &approx_before[..]);
    }

    #[test]
    fn zero_levels_is_noop() {
        let mut c = vec![1.0, -2.0, 3.0, -4.0];
        assert_eq!(denoise_in_place(&mut c, 0, DenoiseMode::Hard), 0);
        assert_eq!(c, vec![1.0, -2.0, 3.0, -4.0]);
    }

    #[test]
    fn universal_threshold_grows_with_n() {
        assert_eq!(universal_threshold(1.0, 1), 0.0);
        assert!(universal_threshold(1.0, 4096) > universal_threshold(1.0, 64));
        assert_eq!(universal_threshold(0.0, 1024), 0.0);
    }

    #[test]
    fn soft_mode_shrinks_survivors() {
        let mut c = vec![0.0, 0.0, 10.0, 0.5]; // 4 coeffs, 2 levels.
        let survivors_before = c[2];
        threshold_in_place(&mut c, 2, 1.0, DenoiseMode::Soft);
        assert_eq!(c[3], 0.0);
        assert!((c[2] - (survivors_before - 1.0)).abs() < 1e-12);

        let mut h = vec![0.0, 0.0, 10.0, 0.5];
        threshold_in_place(&mut h, 2, 1.0, DenoiseMode::Hard);
        assert_eq!(h[2], 10.0);
    }
}
