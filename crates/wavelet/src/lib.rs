//! Wavelet machinery for PRESTO.
//!
//! Three paper mechanisms live here:
//!
//! * **Batched push with wavelet denoising** (Figure 2): a sensor batches
//!   samples, denoises them (shrinking noise-level detail coefficients to
//!   zero), and transmits the compressed coefficient stream — [`denoise`],
//!   [`codec`].
//! * **Lossy compression tuned to query precision** (§3, query–sensor
//!   matching): the quantizer step of [`codec::Codec`] bounds the
//!   reconstruction error, so a 75%-precision query class maps directly to
//!   a coarser, cheaper encoding.
//! * **Graceful aging of archived data** (§4, citing multi-resolution
//!   storage [10]): [`aging`] keeps progressively coarser approximation
//!   bands of old data as storage pressure mounts.
//!
//! Transforms: [`haar`] (the sensor-side default — integer-friendly,
//! checkable in O(n) with tiny state) and [`db4`] (Daubechies-4, used on
//! the proxy side where smoothness matters more than cycles).

pub mod aging;
pub mod codec;
pub mod db4;
pub mod denoise;
pub mod haar;
pub mod quant;

pub use aging::{AgedSummary, AgingLadder};
pub use codec::{Codec, CodecParams, Compressed, EncodeScratch};
pub use denoise::{denoise_in_place, universal_threshold, DenoiseMode};
pub use haar::{
    haar_forward, haar_forward_in_place, haar_inverse, haar_inverse_in_place, haar_levels,
};
pub use quant::{dequantize, pack_ints, quantize, requantize_in_place, unpack_ints};
