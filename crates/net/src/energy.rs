//! Calibrated hardware energy constants.
//!
//! The paper's energy argument (§1) rests on the cost hierarchy
//! *radio ≫ flash ≫ CPU*: computation is cited as up to four orders of
//! magnitude cheaper than communication and storage as two orders
//! cheaper. The presets below reproduce that hierarchy with constants
//! calibrated to the hardware class the authors name:
//!
//! | quantity | Mica2 preset | derivation |
//! |----------|--------------|------------|
//! | radio TX | 16.88 µJ/byte | 27 mA × 3 V / 38.4 kbps (CC1000) |
//! | radio RX | 6.25 µJ/byte | 10 mA × 3 V / 38.4 kbps |
//! | LPL probe | 90 µJ/check | 3 ms probe at RX power |
//! | CPU | 3 nJ/cycle | ATmega128L, 8 mA × 3 V at 8 MHz |
//! | flash write | 0.257 µJ/byte | Atmel dataflash page programming |
//! | flash read | 0.064 µJ/byte | dataflash page reads |
//!
//! Ratios: TX/flash-write ≈ 66 (the paper's "two orders of magnitude"),
//! TX per byte / CPU per cycle ≈ 5,600 and per multi-cycle operation
//! comfortably reaches the cited four orders.

use presto_sim::SimDuration;

/// Radio hardware constants.
#[derive(Clone, Debug, PartialEq)]
pub struct RadioModel {
    /// Link bitrate in bits per second.
    pub bitrate_bps: f64,
    /// Transmit power draw in watts.
    pub tx_power_w: f64,
    /// Receive/listen power draw in watts.
    pub rx_power_w: f64,
    /// Sleep power draw in watts.
    pub sleep_power_w: f64,
    /// Duration of one low-power-listening channel probe.
    pub lpl_probe: SimDuration,
}

impl RadioModel {
    /// Mica2 / CC1000 at 38.4 kbps, 3 V supply.
    pub fn mica2() -> Self {
        RadioModel {
            bitrate_bps: 38_400.0,
            tx_power_w: 0.081,   // 27 mA × 3 V
            rx_power_w: 0.030,   // 10 mA × 3 V
            sleep_power_w: 3e-6, // ~1 µA × 3 V
            lpl_probe: SimDuration::from_millis(3),
        }
    }

    /// Telos / CC2420 at 250 kbps, 3 V supply.
    pub fn telos() -> Self {
        RadioModel {
            bitrate_bps: 250_000.0,
            tx_power_w: 0.0522, // 17.4 mA × 3 V
            rx_power_w: 0.0591, // 19.7 mA × 3 V
            sleep_power_w: 3e-6,
            lpl_probe: SimDuration::from_millis(2),
        }
    }

    /// Seconds on air for `bytes` bytes.
    pub fn airtime(&self, bytes: usize) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 * 8.0 / self.bitrate_bps)
    }

    /// Joules to transmit `bytes` bytes of frame content (no preamble).
    ///
    /// Computed from the exact airtime (not the microsecond-quantized
    /// [`RadioModel::airtime`]) so energy totals are bit-exact.
    pub fn tx_energy(&self, bytes: usize) -> f64 {
        bytes as f64 * 8.0 / self.bitrate_bps * self.tx_power_w
    }

    /// Joules to receive `bytes` bytes.
    pub fn rx_energy(&self, bytes: usize) -> f64 {
        bytes as f64 * 8.0 / self.bitrate_bps * self.rx_power_w
    }

    /// Joules to transmit a wake-up preamble spanning `duration`.
    ///
    /// Under B-MAC low-power listening, the preamble must cover the
    /// receiver's check interval, so this is typically called with the
    /// destination's LPL check interval.
    pub fn preamble_energy(&self, duration: SimDuration) -> f64 {
        duration.as_secs_f64() * self.tx_power_w
    }

    /// Joules for one LPL channel probe (receiver side).
    pub fn probe_energy(&self) -> f64 {
        self.lpl_probe.as_secs_f64() * self.rx_power_w
    }
}

/// Microcontroller cost model.
#[derive(Clone, Debug, PartialEq)]
pub struct CpuModel {
    /// Clock frequency in Hz.
    pub freq_hz: f64,
    /// Active power draw in watts.
    pub active_power_w: f64,
}

impl CpuModel {
    /// ATmega128L at 8 MHz, 3 V (Mica2).
    pub fn atmega128() -> Self {
        CpuModel {
            freq_hz: 8e6,
            active_power_w: 0.024, // 8 mA × 3 V
        }
    }

    /// MSP430 at 8 MHz (Telos) — lower draw per cycle.
    pub fn msp430() -> Self {
        CpuModel {
            freq_hz: 8e6,
            active_power_w: 0.0054, // 1.8 mA × 3 V
        }
    }

    /// Joules per clock cycle.
    pub fn energy_per_cycle(&self) -> f64 {
        self.active_power_w / self.freq_hz
    }

    /// Joules for an operation costing `cycles` cycles.
    pub fn op_energy(&self, cycles: u64) -> f64 {
        cycles as f64 * self.energy_per_cycle()
    }

    /// Wall-clock duration of `cycles` cycles.
    pub fn op_time(&self, cycles: u64) -> SimDuration {
        SimDuration::from_secs_f64(cycles as f64 / self.freq_hz)
    }
}

/// External flash cost model (Atmel dataflash-class).
#[derive(Clone, Debug, PartialEq)]
pub struct FlashModel {
    /// Joules per byte programmed.
    pub write_per_byte_j: f64,
    /// Joules per byte read.
    pub read_per_byte_j: f64,
    /// Joules per block erase.
    pub erase_per_block_j: f64,
    /// Page size in bytes.
    pub page_bytes: usize,
    /// Pages per erase block.
    pub pages_per_block: usize,
}

impl FlashModel {
    /// Atmel AT45DB-class dataflash (Mica2 daughterboard).
    pub fn dataflash() -> Self {
        FlashModel {
            write_per_byte_j: 0.257e-6,
            read_per_byte_j: 0.064e-6,
            erase_per_block_j: 7.0e-6,
            page_bytes: 264,
            pages_per_block: 8,
        }
    }

    /// A modern NAND part for the paper's "1 GB of flash" projection.
    pub fn nand_1gb() -> Self {
        FlashModel {
            write_per_byte_j: 0.12e-6,
            read_per_byte_j: 0.03e-6,
            erase_per_block_j: 20.0e-6,
            page_bytes: 2048,
            pages_per_block: 64,
        }
    }
}

/// A complete platform: radio + CPU + flash.
#[derive(Clone, Debug, PartialEq)]
pub struct PlatformModel {
    /// Radio constants.
    pub radio: RadioModel,
    /// Microcontroller constants.
    pub cpu: CpuModel,
    /// Flash constants.
    pub flash: FlashModel,
}

impl PlatformModel {
    /// The default platform for all paper experiments: Mica2 class.
    pub fn mica2() -> Self {
        PlatformModel {
            radio: RadioModel::mica2(),
            cpu: CpuModel::atmega128(),
            flash: FlashModel::dataflash(),
        }
    }

    /// Telos-class platform for sensitivity studies.
    pub fn telos() -> Self {
        PlatformModel {
            radio: RadioModel::telos(),
            cpu: CpuModel::msp430(),
            flash: FlashModel::dataflash(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mica2_tx_per_byte_matches_datasheet() {
        let r = RadioModel::mica2();
        let per_byte = r.tx_energy(1);
        // 27 mA × 3 V / 38.4 kbps = 16.875 µJ/byte.
        assert!((per_byte - 16.875e-6).abs() < 1e-9, "{per_byte}");
    }

    #[test]
    fn airtime_scales_linearly() {
        let r = RadioModel::mica2();
        let one = r.airtime(1).as_secs_f64();
        let hundred = r.airtime(100).as_secs_f64();
        // Airtime is quantized to microseconds, so allow 0.5% slack.
        assert!((hundred / one - 100.0).abs() < 0.5);
    }

    #[test]
    fn paper_cost_hierarchy_holds() {
        // Radio per byte vs flash write per byte: ~two orders of magnitude.
        let p = PlatformModel::mica2();
        let tx_byte = p.radio.tx_energy(1);
        let flash_byte = p.flash.write_per_byte_j;
        let ratio_storage = tx_byte / flash_byte;
        assert!(
            (30.0..300.0).contains(&ratio_storage),
            "storage ratio {ratio_storage}"
        );

        // Radio per byte vs a small CPU op (a compare, ~4 cycles): ~four
        // orders of magnitude.
        let cpu_op = p.cpu.op_energy(4);
        let ratio_cpu = tx_byte / cpu_op;
        assert!(
            (300.0..30_000.0).contains(&ratio_cpu),
            "cpu ratio {ratio_cpu}"
        );
    }

    #[test]
    fn preamble_energy_scales_with_duration() {
        let r = RadioModel::mica2();
        let half = r.preamble_energy(SimDuration::from_millis(500));
        let full = r.preamble_energy(SimDuration::from_secs(1));
        assert!((full / half - 2.0).abs() < 1e-9);
        // A 1 s preamble at 81 mW is 81 mJ.
        assert!((full - 0.081).abs() < 1e-9);
    }

    #[test]
    fn probe_energy_is_small() {
        let r = RadioModel::mica2();
        // 3 ms at 30 mW = 90 µJ.
        assert!((r.probe_energy() - 90e-6).abs() < 1e-12);
    }

    #[test]
    fn cpu_op_time_and_energy() {
        let c = CpuModel::atmega128();
        assert!((c.energy_per_cycle() - 3e-9).abs() < 1e-15);
        assert!((c.op_energy(1000) - 3e-6).abs() < 1e-12);
        assert!((c.op_time(8000).as_secs_f64() - 1e-3).abs() < 1e-9);
    }

    #[test]
    fn rx_cheaper_than_tx_on_mica2() {
        let r = RadioModel::mica2();
        assert!(r.rx_energy(100) < r.tx_energy(100));
    }

    #[test]
    fn presets_are_distinct() {
        assert_ne!(PlatformModel::mica2(), PlatformModel::telos());
        assert!(RadioModel::telos().bitrate_bps > RadioModel::mica2().bitrate_bps);
    }
}
