//! A B-MAC–style low-power-listening MAC with ARQ.
//!
//! Transmission cost has three parts, and the relative size of each drives
//! every curve in the Figure 2 reproduction:
//!
//! 1. **Wake-up preamble** — to reach a duty-cycled receiver that probes
//!    the channel every `dest_lpl_interval`, the first frame of a
//!    transmission carries a preamble long enough to span one check
//!    interval (B-MAC). This is a *fixed cost per transmission* and is
//!    what batching amortizes.
//! 2. **Frame bytes** — header + payload + CRC per fragment, at the
//!    radio's per-byte cost. This is the floor that compression lowers.
//! 3. **ACK + retransmissions** — each fragment is acknowledged and
//!    retried up to `max_retries` times on loss.
//!
//! When `burst_amortizes_preamble` is true (the default, matching B-MAC
//! with after-preamble synchronization), a multi-fragment payload pays the
//! wake-up preamble once; otherwise every fragment pays it.

use presto_sim::{EnergyCategory, EnergyLedger, SimDuration};

use crate::energy::RadioModel;
use crate::frame::FrameFormat;
use crate::link::LinkModel;

/// Radio turnaround time between a data frame and its ACK.
const TURNAROUND: SimDuration = SimDuration::from_millis(1);

/// MAC configuration bound to a radio model.
#[derive(Clone, Debug)]
pub struct Mac {
    /// Radio hardware constants.
    pub radio: RadioModel,
    /// Frame geometry.
    pub frame: FrameFormat,
    /// Retransmissions allowed per fragment after the first attempt.
    pub max_retries: u32,
    /// The destination's LPL check interval; zero means the destination
    /// listens continuously (e.g. a tethered proxy) and only a short
    /// synchronization preamble is needed.
    pub dest_lpl_interval: SimDuration,
    /// Pay the wake-up preamble once per transmission (true) or once per
    /// fragment (false).
    pub burst_amortizes_preamble: bool,
}

/// Short synchronization preamble bytes prepended to every frame even when
/// the receiver is awake.
const SYNC_PREAMBLE_BYTES: usize = 6;

/// Result of a MAC-layer send.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TxOutcome {
    /// True if every fragment was delivered and acknowledged.
    pub delivered: bool,
    /// Frames put on the air, including retransmissions.
    pub frames_sent: u64,
    /// Frames that physically reached the receiver.
    pub frames_delivered: u64,
    /// Sender-side energy (preambles + frames + ACK reception), joules.
    pub tx_energy_j: f64,
    /// Receiver-side energy (preamble tail + frames + ACK transmission), joules.
    pub rx_energy_j: f64,
    /// Time from send start to final ACK (or final failed attempt).
    pub latency: SimDuration,
}

impl Mac {
    /// A sensor→proxy uplink: the proxy is tethered and always listening,
    /// so no long wake-up preamble is needed.
    pub fn uplink(radio: RadioModel, frame: FrameFormat) -> Self {
        Mac {
            radio,
            frame,
            max_retries: 3,
            dest_lpl_interval: SimDuration::ZERO,
            burst_amortizes_preamble: true,
        }
    }

    /// A proxy→sensor downlink: the sensor duty-cycles its radio with the
    /// given LPL check interval, so transmissions pay a wake-up preamble.
    pub fn downlink(radio: RadioModel, frame: FrameFormat, lpl: SimDuration) -> Self {
        Mac {
            radio,
            frame,
            max_retries: 3,
            dest_lpl_interval: lpl,
            burst_amortizes_preamble: true,
        }
    }

    /// Energy of the wake-up preamble for one transmission start.
    pub fn wakeup_preamble_energy(&self) -> f64 {
        self.radio.preamble_energy(self.dest_lpl_interval)
    }

    /// Sends `payload_len` bytes over `link`, charging the sender's and
    /// (optionally) the receiver's energy ledgers.
    ///
    /// The loss process is sampled per frame; ACKs traverse the same link.
    pub fn send(
        &self,
        payload_len: usize,
        link: &mut LinkModel,
        tx_ledger: &mut EnergyLedger,
        mut rx_ledger: Option<&mut EnergyLedger>,
    ) -> TxOutcome {
        let mut out = TxOutcome::default();
        let fragments = self.frame.fragment_sizes(payload_len);

        // Wake-up preamble: once per send (burst) or once per fragment.
        let wakeups = if self.burst_amortizes_preamble {
            1
        } else {
            fragments.len()
        };
        if !self.dest_lpl_interval.is_zero() {
            let pre_j = self.wakeup_preamble_energy() * wakeups as f64;
            tx_ledger.charge(EnergyCategory::RadioTx, pre_j);
            out.tx_energy_j += pre_j;
            out.latency += self.dest_lpl_interval.saturating_mul(wakeups as u64);
            // The receiver hears on average half the preamble after its
            // probe matches.
            if let Some(rx) = rx_ledger.as_deref_mut() {
                let rx_j = (self.dest_lpl_interval / 2).as_secs_f64()
                    * self.radio.rx_power_w
                    * wakeups as f64;
                rx.charge(EnergyCategory::RadioRx, rx_j);
                out.rx_energy_j += rx_j;
            }
        }

        let mut all_delivered = true;
        'frags: for &frag in &fragments {
            let wire = self.frame.frame_wire_bytes(frag) + SYNC_PREAMBLE_BYTES;
            let mut attempts = 0;
            loop {
                attempts += 1;
                out.frames_sent += 1;

                let tx_j = self.radio.tx_energy(wire);
                tx_ledger.charge(EnergyCategory::RadioTx, tx_j);
                out.tx_energy_j += tx_j;
                out.latency += self.radio.airtime(wire);

                let frame_ok = link.deliver();
                let mut acked = false;
                if frame_ok {
                    out.frames_delivered += 1;
                    if let Some(rx) = rx_ledger.as_deref_mut() {
                        let j = self.radio.rx_energy(wire);
                        rx.charge(EnergyCategory::RadioRx, j);
                        out.rx_energy_j += j;
                    }
                    // ACK in the reverse direction.
                    out.latency += TURNAROUND + self.radio.airtime(self.frame.ack_bytes);
                    if let Some(rx) = rx_ledger.as_deref_mut() {
                        let j = self.radio.tx_energy(self.frame.ack_bytes);
                        rx.charge(EnergyCategory::RadioTx, j);
                        out.rx_energy_j += j;
                    }
                    acked = link.deliver();
                    if acked {
                        let j = self.radio.rx_energy(self.frame.ack_bytes);
                        tx_ledger.charge(EnergyCategory::RadioRx, j);
                        out.tx_energy_j += j;
                    }
                } else {
                    // Sender still listens for the ACK window.
                    out.latency += TURNAROUND + self.radio.airtime(self.frame.ack_bytes);
                    let j = self.radio.rx_energy(self.frame.ack_bytes);
                    tx_ledger.charge(EnergyCategory::RadioListen, j);
                    out.tx_energy_j += j;
                }

                if acked {
                    break;
                }
                if attempts > self.max_retries {
                    all_delivered = false;
                    break 'frags;
                }
            }
        }

        out.delivered = all_delivered;
        out
    }

    /// Closed-form *expected* sender energy for a send over a lossless
    /// link — used by planners (query–sensor matching) that must reason
    /// about costs without performing the transmission.
    pub fn expected_send_energy(&self, payload_len: usize) -> f64 {
        let fragments = self.frame.fragment_sizes(payload_len);
        let wakeups = if self.burst_amortizes_preamble {
            1
        } else {
            fragments.len()
        };
        let mut j = if self.dest_lpl_interval.is_zero() {
            0.0
        } else {
            self.wakeup_preamble_energy() * wakeups as f64
        };
        for &frag in &fragments {
            let wire = self.frame.frame_wire_bytes(frag) + SYNC_PREAMBLE_BYTES;
            j += self.radio.tx_energy(wire);
            j += self.radio.rx_energy(self.frame.ack_bytes);
        }
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_sim::SimRng;

    fn uplink() -> Mac {
        Mac::uplink(RadioModel::mica2(), FrameFormat::tinyos_mica2())
    }

    #[test]
    fn lossless_send_delivers_all_fragments() {
        let mac = uplink();
        let mut link = LinkModel::perfect();
        let mut tx = EnergyLedger::new();
        let mut rx = EnergyLedger::new();
        let out = mac.send(100, &mut link, &mut tx, Some(&mut rx));
        assert!(out.delivered);
        assert_eq!(out.frames_sent, 4); // ceil(100/29)
        assert_eq!(out.frames_delivered, 4);
        assert!(out.tx_energy_j > 0.0);
        assert!(out.rx_energy_j > 0.0);
        assert!(tx.total() > 0.0 && rx.total() > 0.0);
    }

    #[test]
    fn expected_energy_matches_lossless_send() {
        let mac = uplink();
        let mut link = LinkModel::perfect();
        let mut tx = EnergyLedger::new();
        let out = mac.send(64, &mut link, &mut tx, None);
        let expected = mac.expected_send_energy(64);
        assert!(
            (out.tx_energy_j - expected).abs() < 1e-12,
            "sim {} vs closed form {}",
            out.tx_energy_j,
            expected
        );
    }

    #[test]
    fn preamble_dominates_small_sends_on_downlink() {
        let mac = Mac::downlink(
            RadioModel::mica2(),
            FrameFormat::tinyos_mica2(),
            SimDuration::from_secs(1),
        );
        let per_send = mac.expected_send_energy(2);
        // 1 s preamble at 81 mW = 81 mJ; frame bytes are well under 1 mJ.
        assert!(per_send > 0.081 && per_send < 0.083, "{per_send}");
    }

    #[test]
    fn burst_amortization_saves_preambles() {
        let radio = RadioModel::mica2();
        let frame = FrameFormat::tinyos_mica2();
        let lpl = SimDuration::from_secs(1);
        let burst = Mac {
            burst_amortizes_preamble: true,
            ..Mac::downlink(radio.clone(), frame.clone(), lpl)
        };
        let per_frame = Mac {
            burst_amortizes_preamble: false,
            ..Mac::downlink(radio, frame, lpl)
        };
        let payload = 29 * 10;
        let e_burst = burst.expected_send_energy(payload);
        let e_frame = per_frame.expected_send_energy(payload);
        // 10 fragments: 9 extra preambles ≈ 9 × 81 mJ difference.
        assert!((e_frame - e_burst - 9.0 * 0.081).abs() < 1e-3);
    }

    #[test]
    fn total_loss_fails_after_retries() {
        let mac = uplink();
        let mut link = LinkModel::new(crate::link::LossProcess::Bernoulli(1.0), SimRng::new(1));
        let mut tx = EnergyLedger::new();
        let out = mac.send(10, &mut link, &mut tx, None);
        assert!(!out.delivered);
        assert_eq!(out.frames_sent, (mac.max_retries + 1) as u64);
        assert_eq!(out.frames_delivered, 0);
        // Failed attempts still cost energy.
        assert!(out.tx_energy_j > 0.0);
    }

    #[test]
    fn lossy_link_costs_more_than_lossless() {
        let mac = uplink();
        let payload = 29 * 8;
        let run = |loss| {
            let mut total = 0.0;
            for seed in 0..50 {
                let mut link =
                    LinkModel::new(crate::link::LossProcess::Bernoulli(loss), SimRng::new(seed));
                let mut tx = EnergyLedger::new();
                mac.send(payload, &mut link, &mut tx, None);
                total += tx.total();
            }
            total
        };
        assert!(run(0.3) > run(0.0) * 1.2);
    }

    #[test]
    fn latency_includes_preamble_and_airtime() {
        let mac = Mac::downlink(
            RadioModel::mica2(),
            FrameFormat::tinyos_mica2(),
            SimDuration::from_millis(500),
        );
        let mut link = LinkModel::perfect();
        let mut tx = EnergyLedger::new();
        let out = mac.send(4, &mut link, &mut tx, None);
        assert!(out.latency > SimDuration::from_millis(500));
        assert!(out.latency < SimDuration::from_millis(520));
    }

    #[test]
    fn receiver_ledger_untouched_when_absent() {
        let mac = uplink();
        let mut link = LinkModel::perfect();
        let mut tx = EnergyLedger::new();
        let out = mac.send(10, &mut link, &mut tx, None);
        assert!(out.delivered);
        assert_eq!(out.rx_energy_j, 0.0);
    }

    #[test]
    fn energy_charged_matches_outcome_fields() {
        let mac = Mac::downlink(
            RadioModel::mica2(),
            FrameFormat::tinyos_mica2(),
            SimDuration::from_millis(100),
        );
        let mut link = LinkModel::new(crate::link::LossProcess::Bernoulli(0.2), SimRng::new(3));
        let mut tx = EnergyLedger::new();
        let mut rx = EnergyLedger::new();
        let out = mac.send(200, &mut link, &mut tx, Some(&mut rx));
        assert!((tx.total() - out.tx_energy_j).abs() < 1e-12);
        assert!((rx.total() - out.rx_energy_j).abs() < 1e-12);
    }
}
