//! Frame loss models.
//!
//! Low-power wireless links lose frames, and they lose them in bursts
//! (the paper cites the UCLA "complex behavior at scale" study [4] for
//! the unreliability of these networks). Four processes are provided:
//!
//! * [`LossProcess::Bernoulli`] — independent loss with fixed probability.
//! * [`LossProcess::Gilbert`] — a two-state Gilbert–Elliott chain with a
//!   "good" and a "bad" state, producing bursty loss episodes. The chain
//!   state is private to one link.
//! * [`LossProcess::Correlated`] — Gilbert–Elliott where the good/bad
//!   *state* lives in a [`SharedLossState`] sampled by every link that
//!   holds a clone of the handle: when the shared path near a proxy
//!   fades, all of its sensors' channels degrade together, which is what
//!   stresses retry budgets and liveness leases realistically (one bad
//!   burst hits every channel at once instead of averaging out).
//!   Per-frame loss draws remain independent *given* the state; the
//!   state itself advances on the driver's clock via
//!   [`SharedLossState::advance`], not per frame, so no link
//!   double-advances the chain.
//! * [`LossProcess::Mixed`] — the composition of an independent
//!   per-link Gilbert–Elliott chain with a shared [`SharedLossState`]
//!   chain, modeling a *partially*-shared path: part of the route is
//!   private to the link (its own fades), part is common to every link
//!   holding a clone of the shared handle (the congested backhaul near
//!   a proxy, or the proxy↔proxy mesh segment). A frame survives only
//!   if both components deliver it, so the long-run loss is
//!   `1 − (1 − p_link)(1 − p_shared)` and bursts arrive from either
//!   chain.
//! * [`LossProcess::Scripted`] — replays a fixed delivery pattern,
//!   cycling; the reference process for property tests that must
//!   exercise exact loss traces (all-lost bursts included).

use std::sync::{Arc, Mutex};

use presto_sim::SimRng;

/// Parameters of a Gilbert–Elliott bursty loss chain.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GilbertElliott {
    /// Probability of moving good → bad per frame.
    pub p_gb: f64,
    /// Probability of moving bad → good per frame.
    pub p_bg: f64,
    /// Frame loss probability in the good state.
    pub loss_good: f64,
    /// Frame loss probability in the bad state.
    pub loss_bad: f64,
}

impl GilbertElliott {
    /// A typical indoor low-power link: mostly clean with occasional
    /// multi-frame fades.
    pub fn indoor() -> Self {
        GilbertElliott {
            p_gb: 0.005,
            p_bg: 0.15,
            loss_good: 0.02,
            loss_bad: 0.75,
        }
    }

    /// Long-run stationary loss probability of the chain.
    pub fn stationary_loss(&self) -> f64 {
        let pi_bad = self.p_gb / (self.p_gb + self.p_bg);
        (1.0 - pi_bad) * self.loss_good + pi_bad * self.loss_bad
    }
}

/// The fading state shared by every channel that clones one
/// [`SharedLossState`] handle: a Gilbert–Elliott chain whose transitions
/// are driven by the simulation driver (per epoch), not per frame.
#[derive(Debug)]
struct SharedFading {
    chain: GilbertElliott,
    in_bad: bool,
    /// While `Some`, the fault plan pins the state (burst injection).
    forced: Option<bool>,
    rng: SimRng,
    /// Driver advances observed (for diagnostics / determinism checks).
    steps: u64,
}

/// Handle to a common fading/congestion state near one proxy.
///
/// Cloning the handle shares the state — that is the point: every
/// channel constructed with a clone samples the *same* good/bad burst
/// process. Equality is identity (two handles are equal iff they share
/// state).
#[derive(Clone, Debug)]
pub struct SharedLossState(Arc<Mutex<SharedFading>>);

impl PartialEq for SharedLossState {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl SharedLossState {
    /// Creates a shared state over the given chain, starting good.
    pub fn new(chain: GilbertElliott, rng: SimRng) -> Self {
        SharedLossState(Arc::new(Mutex::new(SharedFading {
            chain,
            in_bad: false,
            forced: None,
            rng,
            steps: 0,
        })))
    }

    /// Advances the chain by `steps` transitions. Called by the system
    /// driver once per epoch; links never advance the shared state.
    pub fn advance(&self, steps: u64) {
        let mut s = self.0.lock().expect("shared loss state poisoned");
        for _ in 0..steps {
            let flip = if s.in_bad { s.chain.p_bg } else { s.chain.p_gb };
            if s.rng.chance(flip) {
                s.in_bad = !s.in_bad;
            }
            s.steps += 1;
        }
    }

    /// Pins the state bad (`Some(true)`), good (`Some(false)`), or
    /// releases it to the chain (`None`) — the fault-plan hook for
    /// deterministic correlated-burst windows.
    pub fn force(&self, state: Option<bool>) {
        self.0.lock().expect("shared loss state poisoned").forced = state;
    }

    /// True while the shared path is in the bad (fading) state.
    pub fn in_bad(&self) -> bool {
        let s = self.0.lock().expect("shared loss state poisoned");
        s.forced.unwrap_or(s.in_bad)
    }

    /// Per-frame loss probability under the current state.
    pub fn loss_prob(&self) -> f64 {
        let s = self.0.lock().expect("shared loss state poisoned");
        if s.forced.unwrap_or(s.in_bad) {
            s.chain.loss_bad
        } else {
            s.chain.loss_good
        }
    }

    /// Driver advances observed so far.
    pub fn steps(&self) -> u64 {
        self.0.lock().expect("shared loss state poisoned").steps
    }
}

/// A frame loss process.
#[derive(Clone, Debug, PartialEq)]
pub enum LossProcess {
    /// Lossless link (wired proxies).
    Perfect,
    /// Independent per-frame loss with the given probability.
    Bernoulli(f64),
    /// Bursty Gilbert–Elliott loss.
    Gilbert(GilbertElliott),
    /// Gilbert–Elliott loss whose burst state is shared with every other
    /// link holding a clone of the same handle (common-path fading).
    Correlated(SharedLossState),
    /// Partially-shared path: an independent per-link chain composed
    /// with a shared chain. A frame must survive both — the private
    /// chain advances per frame (like [`LossProcess::Gilbert`]), the
    /// shared state advances on the driver's clock.
    Mixed {
        /// The link's private burst chain.
        link: GilbertElliott,
        /// The common-segment fading state.
        shared: SharedLossState,
    },
    /// Replays a fixed delivery pattern (`true` = deliver), cycling.
    /// Empty patterns deliver everything.
    Scripted(Arc<[bool]>),
}

/// A directional link with its loss process state.
#[derive(Clone, Debug)]
pub struct LinkModel {
    process: LossProcess,
    /// Current Gilbert state: `true` = bad.
    in_bad_state: bool,
    /// Cursor into a [`LossProcess::Scripted`] pattern.
    script_pos: usize,
    rng: SimRng,
    frames_offered: u64,
    frames_lost: u64,
    /// Hard gate: while set, every offered frame is lost regardless of
    /// the loss process. Drivers use it for physical severances — a cut
    /// mesh link during a split-brain window — that are deterministic,
    /// unlike the stochastic fading the process models. The process
    /// state does not advance while blocked, so a healed link resumes
    /// exactly the fading trajectory it would have had.
    blocked: bool,
}

impl LinkModel {
    /// Creates a link with the given loss process and RNG stream.
    pub fn new(process: LossProcess, rng: SimRng) -> Self {
        LinkModel {
            process,
            in_bad_state: false,
            script_pos: 0,
            rng,
            frames_offered: 0,
            frames_lost: 0,
            blocked: false,
        }
    }

    /// Sets the hard gate: a blocked link loses every offered frame.
    pub fn set_blocked(&mut self, blocked: bool) {
        self.blocked = blocked;
    }

    /// True while the hard gate is set.
    pub fn is_blocked(&self) -> bool {
        self.blocked
    }

    /// A perfect (wired) link; the RNG is unused.
    pub fn perfect() -> Self {
        LinkModel::new(LossProcess::Perfect, SimRng::new(0))
    }

    /// Samples whether the next offered frame is delivered.
    pub fn deliver(&mut self) -> bool {
        self.frames_offered += 1;
        if self.blocked {
            self.frames_lost += 1;
            return false;
        }
        let lost = match &self.process {
            LossProcess::Perfect => false,
            LossProcess::Bernoulli(p) => self.rng.chance(*p),
            LossProcess::Gilbert(g) => {
                // Advance the state first, then sample loss in-state.
                let flip = if self.in_bad_state { g.p_bg } else { g.p_gb };
                if self.rng.chance(flip) {
                    self.in_bad_state = !self.in_bad_state;
                }
                let p = if self.in_bad_state {
                    g.loss_bad
                } else {
                    g.loss_good
                };
                self.rng.chance(p)
            }
            LossProcess::Correlated(shared) => {
                // The burst state is shared; the in-state draw is this
                // link's own (conditionally independent given the state).
                let p = shared.loss_prob();
                self.rng.chance(p)
            }
            LossProcess::Mixed { link, shared } => {
                // Private segment: advance this link's own chain and
                // sample in-state, exactly as a Gilbert link would.
                let flip = if self.in_bad_state {
                    link.p_bg
                } else {
                    link.p_gb
                };
                if self.rng.chance(flip) {
                    self.in_bad_state = !self.in_bad_state;
                }
                let p_link = if self.in_bad_state {
                    link.loss_bad
                } else {
                    link.loss_good
                };
                // Shared segment: driver-advanced common state. The
                // frame must survive both segments.
                self.rng.chance(p_link) || self.rng.chance(shared.loss_prob())
            }
            LossProcess::Scripted(pattern) => {
                if pattern.is_empty() {
                    false
                } else {
                    let deliver = pattern[self.script_pos % pattern.len()];
                    self.script_pos += 1;
                    !deliver
                }
            }
        };
        if lost {
            self.frames_lost += 1;
        }
        !lost
    }

    /// Observed loss rate so far.
    pub fn observed_loss(&self) -> f64 {
        if self.frames_offered == 0 {
            0.0
        } else {
            self.frames_lost as f64 / self.frames_offered as f64
        }
    }

    /// Frames offered to the link so far.
    pub fn frames_offered(&self) -> u64 {
        self.frames_offered
    }

    /// The configured loss process.
    pub fn process(&self) -> &LossProcess {
        &self.process
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_link_never_drops() {
        let mut l = LinkModel::perfect();
        assert!((0..10_000).all(|_| l.deliver()));
        assert_eq!(l.observed_loss(), 0.0);
    }

    #[test]
    fn bernoulli_matches_probability() {
        let mut l = LinkModel::new(LossProcess::Bernoulli(0.3), SimRng::new(5));
        for _ in 0..50_000 {
            l.deliver();
        }
        assert!(
            (l.observed_loss() - 0.3).abs() < 0.01,
            "{}",
            l.observed_loss()
        );
    }

    #[test]
    fn gilbert_long_run_matches_stationary() {
        let g = GilbertElliott::indoor();
        let mut l = LinkModel::new(LossProcess::Gilbert(g), SimRng::new(6));
        for _ in 0..200_000 {
            l.deliver();
        }
        let expect = g.stationary_loss();
        assert!(
            (l.observed_loss() - expect).abs() < 0.01,
            "observed {} expected {}",
            l.observed_loss(),
            expect
        );
    }

    #[test]
    fn gilbert_losses_are_bursty() {
        // Compare the mean run length of consecutive losses against a
        // Bernoulli link of the same long-run rate: bursts should be longer.
        let g = GilbertElliott::indoor();
        let rate = g.stationary_loss();

        let run_mean = |mut link: LinkModel| {
            let (mut runs, mut losses, mut in_run) = (0u64, 0u64, false);
            for _ in 0..200_000 {
                let ok = link.deliver();
                if !ok {
                    losses += 1;
                    if !in_run {
                        runs += 1;
                        in_run = true;
                    }
                } else {
                    in_run = false;
                }
            }
            losses as f64 / runs.max(1) as f64
        };

        let bursty = run_mean(LinkModel::new(LossProcess::Gilbert(g), SimRng::new(7)));
        let indep = run_mean(LinkModel::new(LossProcess::Bernoulli(rate), SimRng::new(8)));
        assert!(
            bursty > indep * 1.3,
            "bursty run {bursty} vs independent {indep}"
        );
    }

    #[test]
    fn bernoulli_extremes() {
        let mut always = LinkModel::new(LossProcess::Bernoulli(1.0), SimRng::new(9));
        assert!(!always.deliver());
        let mut never = LinkModel::new(LossProcess::Bernoulli(0.0), SimRng::new(9));
        assert!(never.deliver());
    }

    #[test]
    fn deterministic_given_seed() {
        let seq = |seed| {
            let mut l = LinkModel::new(LossProcess::Bernoulli(0.5), SimRng::new(seed));
            (0..64).map(|_| l.deliver()).collect::<Vec<_>>()
        };
        assert_eq!(seq(3), seq(3));
        assert_ne!(seq(3), seq(4));
    }

    #[test]
    fn blocked_link_loses_everything_and_heals_deterministically() {
        let pattern: Arc<[bool]> = vec![true, true, false, true].into();
        let mut gated = LinkModel::new(LossProcess::Scripted(pattern.clone()), SimRng::new(0));
        let mut free = LinkModel::new(LossProcess::Scripted(pattern), SimRng::new(0));
        gated.set_blocked(true);
        assert!(gated.is_blocked());
        for _ in 0..5 {
            assert!(!gated.deliver(), "blocked link must lose every frame");
        }
        // Healing resumes the scripted trace where it would have been had
        // the block never advanced the process.
        gated.set_blocked(false);
        let after_heal: Vec<bool> = (0..4).map(|_| gated.deliver()).collect();
        let reference: Vec<bool> = (0..4).map(|_| free.deliver()).collect();
        assert_eq!(after_heal, reference);
        assert!(gated.observed_loss() > 0.0);
    }

    #[test]
    fn scripted_replays_the_exact_trace_cyclically() {
        let pattern: Arc<[bool]> = vec![true, false, false, true].into();
        let mut l = LinkModel::new(LossProcess::Scripted(pattern), SimRng::new(0));
        let got: Vec<bool> = (0..8).map(|_| l.deliver()).collect();
        assert_eq!(
            got,
            vec![true, false, false, true, true, false, false, true]
        );
        // Empty pattern delivers everything.
        let mut e = LinkModel::new(LossProcess::Scripted(Vec::new().into()), SimRng::new(0));
        assert!((0..16).all(|_| e.deliver()));
    }

    #[test]
    fn correlated_links_fade_together() {
        // Extreme chain so the state is unambiguous: lossless good state,
        // total loss in the bad state.
        let chain = GilbertElliott {
            p_gb: 0.2,
            p_bg: 0.2,
            loss_good: 0.0,
            loss_bad: 1.0,
        };
        let shared = SharedLossState::new(chain, SimRng::new(11));
        let mut a = LinkModel::new(LossProcess::Correlated(shared.clone()), SimRng::new(1));
        let mut b = LinkModel::new(LossProcess::Correlated(shared.clone()), SimRng::new(2));
        let mut agree = 0u64;
        let mut bad_epochs = 0u64;
        for _ in 0..400 {
            shared.advance(1);
            let (da, db) = (a.deliver(), b.deliver());
            if da == db {
                agree += 1;
            }
            if shared.in_bad() {
                bad_epochs += 1;
                assert!(!da && !db, "bad state must kill both channels");
            } else {
                assert!(da && db, "good state must deliver on both");
            }
        }
        assert_eq!(agree, 400, "channels sharing one state never diverge");
        assert!(
            bad_epochs > 50 && bad_epochs < 350,
            "chain should visit both states: {bad_epochs} bad epochs"
        );
    }

    #[test]
    fn correlated_state_only_moves_when_advanced() {
        let shared = SharedLossState::new(GilbertElliott::indoor(), SimRng::new(3));
        let mut l = LinkModel::new(LossProcess::Correlated(shared.clone()), SimRng::new(4));
        let before = shared.in_bad();
        for _ in 0..1000 {
            l.deliver();
        }
        assert_eq!(shared.in_bad(), before, "frames must not advance the chain");
        assert_eq!(shared.steps(), 0);
        shared.advance(10);
        assert_eq!(shared.steps(), 10);
    }

    #[test]
    fn forcing_overrides_the_chain_until_released() {
        let chain = GilbertElliott {
            p_gb: 0.0, // chain alone never goes bad
            p_bg: 1.0,
            loss_good: 0.0,
            loss_bad: 1.0,
        };
        let shared = SharedLossState::new(chain, SimRng::new(5));
        let mut l = LinkModel::new(LossProcess::Correlated(shared.clone()), SimRng::new(6));
        assert!(l.deliver());
        shared.force(Some(true));
        assert!(!l.deliver(), "forced-bad path must lose every frame");
        assert!(shared.in_bad());
        shared.force(None);
        assert!(l.deliver(), "released path follows the (good) chain");
    }

    #[test]
    fn mixed_loses_when_either_segment_fades() {
        // Private chain never goes bad; only the shared segment can
        // kill a frame.
        let quiet = GilbertElliott {
            p_gb: 0.0,
            p_bg: 1.0,
            loss_good: 0.0,
            loss_bad: 1.0,
        };
        let shared = SharedLossState::new(quiet, SimRng::new(21));
        let mut l = LinkModel::new(
            LossProcess::Mixed {
                link: quiet,
                shared: shared.clone(),
            },
            SimRng::new(22),
        );
        assert!(l.deliver(), "both segments good must deliver");
        shared.force(Some(true));
        assert!(!l.deliver(), "shared fade must kill the frame");
        shared.force(None);
        assert!(l.deliver());
        // Conversely, a total private fade loses even on a good shared
        // path.
        let total = GilbertElliott {
            p_gb: 1.0,
            p_bg: 0.0,
            loss_good: 1.0,
            loss_bad: 1.0,
        };
        let mut m = LinkModel::new(
            LossProcess::Mixed {
                link: total,
                shared: shared.clone(),
            },
            SimRng::new(23),
        );
        assert!(!m.deliver(), "private fade must kill the frame");
    }

    #[test]
    fn mixed_long_run_composes_both_rates() {
        // Private chain with known stationary loss, shared chain pinned
        // good at a fixed in-state loss: observed ≈ 1-(1-pl)(1-ps).
        let link = GilbertElliott::indoor();
        let shared_chain = GilbertElliott {
            p_gb: 0.0,
            p_bg: 1.0,
            loss_good: 0.1,
            loss_bad: 1.0,
        };
        let shared = SharedLossState::new(shared_chain, SimRng::new(31));
        let mut l = LinkModel::new(
            LossProcess::Mixed {
                link,
                shared: shared.clone(),
            },
            SimRng::new(32),
        );
        for _ in 0..200_000 {
            l.deliver();
        }
        let expect = 1.0 - (1.0 - link.stationary_loss()) * (1.0 - 0.1);
        assert!(
            (l.observed_loss() - expect).abs() < 0.01,
            "observed {} expected {}",
            l.observed_loss(),
            expect
        );
    }

    #[test]
    fn mixed_links_share_only_the_common_segment() {
        // Shared segment pinned bad: every mixed link loses together.
        // Released: links diverge through their private chains.
        let chain = GilbertElliott {
            p_gb: 0.3,
            p_bg: 0.3,
            loss_good: 0.0,
            loss_bad: 1.0,
        };
        let shared = SharedLossState::new(
            GilbertElliott {
                p_gb: 0.0,
                p_bg: 1.0,
                loss_good: 0.0,
                loss_bad: 1.0,
            },
            SimRng::new(41),
        );
        let mk = |seed| {
            LinkModel::new(
                LossProcess::Mixed {
                    link: chain,
                    shared: shared.clone(),
                },
                SimRng::new(seed),
            )
        };
        let (mut a, mut b) = (mk(42), mk(43));
        shared.force(Some(true));
        for _ in 0..50 {
            assert!(!a.deliver() && !b.deliver(), "shared fade hits every link");
        }
        shared.force(None);
        let mut diverged = false;
        for _ in 0..400 {
            if a.deliver() != b.deliver() {
                diverged = true;
            }
        }
        assert!(diverged, "private chains must make links diverge");
    }

    #[test]
    fn shared_handles_compare_by_identity() {
        let a = SharedLossState::new(GilbertElliott::indoor(), SimRng::new(7));
        let b = SharedLossState::new(GilbertElliott::indoor(), SimRng::new(7));
        assert_eq!(a, a.clone());
        assert_ne!(a, b);
    }
}
