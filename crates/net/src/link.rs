//! Frame loss models.
//!
//! Low-power wireless links lose frames, and they lose them in bursts
//! (the paper cites the UCLA "complex behavior at scale" study [4] for
//! the unreliability of these networks). Two processes are provided:
//!
//! * [`LossProcess::Bernoulli`] — independent loss with fixed probability.
//! * [`LossProcess::Gilbert`] — a two-state Gilbert–Elliott chain with a
//!   "good" and a "bad" state, producing bursty loss episodes.

use presto_sim::SimRng;

/// Parameters of a Gilbert–Elliott bursty loss chain.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GilbertElliott {
    /// Probability of moving good → bad per frame.
    pub p_gb: f64,
    /// Probability of moving bad → good per frame.
    pub p_bg: f64,
    /// Frame loss probability in the good state.
    pub loss_good: f64,
    /// Frame loss probability in the bad state.
    pub loss_bad: f64,
}

impl GilbertElliott {
    /// A typical indoor low-power link: mostly clean with occasional
    /// multi-frame fades.
    pub fn indoor() -> Self {
        GilbertElliott {
            p_gb: 0.005,
            p_bg: 0.15,
            loss_good: 0.02,
            loss_bad: 0.75,
        }
    }

    /// Long-run stationary loss probability of the chain.
    pub fn stationary_loss(&self) -> f64 {
        let pi_bad = self.p_gb / (self.p_gb + self.p_bg);
        (1.0 - pi_bad) * self.loss_good + pi_bad * self.loss_bad
    }
}

/// A frame loss process.
#[derive(Clone, Debug, PartialEq)]
pub enum LossProcess {
    /// Lossless link (wired proxies).
    Perfect,
    /// Independent per-frame loss with the given probability.
    Bernoulli(f64),
    /// Bursty Gilbert–Elliott loss.
    Gilbert(GilbertElliott),
}

/// A directional link with its loss process state.
#[derive(Clone, Debug)]
pub struct LinkModel {
    process: LossProcess,
    /// Current Gilbert state: `true` = bad.
    in_bad_state: bool,
    rng: SimRng,
    frames_offered: u64,
    frames_lost: u64,
}

impl LinkModel {
    /// Creates a link with the given loss process and RNG stream.
    pub fn new(process: LossProcess, rng: SimRng) -> Self {
        LinkModel {
            process,
            in_bad_state: false,
            rng,
            frames_offered: 0,
            frames_lost: 0,
        }
    }

    /// A perfect (wired) link; the RNG is unused.
    pub fn perfect() -> Self {
        LinkModel::new(LossProcess::Perfect, SimRng::new(0))
    }

    /// Samples whether the next offered frame is delivered.
    pub fn deliver(&mut self) -> bool {
        self.frames_offered += 1;
        let lost = match &self.process {
            LossProcess::Perfect => false,
            LossProcess::Bernoulli(p) => self.rng.chance(*p),
            LossProcess::Gilbert(g) => {
                // Advance the state first, then sample loss in-state.
                let flip = if self.in_bad_state { g.p_bg } else { g.p_gb };
                if self.rng.chance(flip) {
                    self.in_bad_state = !self.in_bad_state;
                }
                let p = if self.in_bad_state {
                    g.loss_bad
                } else {
                    g.loss_good
                };
                self.rng.chance(p)
            }
        };
        if lost {
            self.frames_lost += 1;
        }
        !lost
    }

    /// Observed loss rate so far.
    pub fn observed_loss(&self) -> f64 {
        if self.frames_offered == 0 {
            0.0
        } else {
            self.frames_lost as f64 / self.frames_offered as f64
        }
    }

    /// Frames offered to the link so far.
    pub fn frames_offered(&self) -> u64 {
        self.frames_offered
    }

    /// The configured loss process.
    pub fn process(&self) -> &LossProcess {
        &self.process
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_link_never_drops() {
        let mut l = LinkModel::perfect();
        assert!((0..10_000).all(|_| l.deliver()));
        assert_eq!(l.observed_loss(), 0.0);
    }

    #[test]
    fn bernoulli_matches_probability() {
        let mut l = LinkModel::new(LossProcess::Bernoulli(0.3), SimRng::new(5));
        for _ in 0..50_000 {
            l.deliver();
        }
        assert!(
            (l.observed_loss() - 0.3).abs() < 0.01,
            "{}",
            l.observed_loss()
        );
    }

    #[test]
    fn gilbert_long_run_matches_stationary() {
        let g = GilbertElliott::indoor();
        let mut l = LinkModel::new(LossProcess::Gilbert(g), SimRng::new(6));
        for _ in 0..200_000 {
            l.deliver();
        }
        let expect = g.stationary_loss();
        assert!(
            (l.observed_loss() - expect).abs() < 0.01,
            "observed {} expected {}",
            l.observed_loss(),
            expect
        );
    }

    #[test]
    fn gilbert_losses_are_bursty() {
        // Compare the mean run length of consecutive losses against a
        // Bernoulli link of the same long-run rate: bursts should be longer.
        let g = GilbertElliott::indoor();
        let rate = g.stationary_loss();

        let run_mean = |mut link: LinkModel| {
            let (mut runs, mut losses, mut in_run) = (0u64, 0u64, false);
            for _ in 0..200_000 {
                let ok = link.deliver();
                if !ok {
                    losses += 1;
                    if !in_run {
                        runs += 1;
                        in_run = true;
                    }
                } else {
                    in_run = false;
                }
            }
            losses as f64 / runs.max(1) as f64
        };

        let bursty = run_mean(LinkModel::new(LossProcess::Gilbert(g), SimRng::new(7)));
        let indep = run_mean(LinkModel::new(LossProcess::Bernoulli(rate), SimRng::new(8)));
        assert!(
            bursty > indep * 1.3,
            "bursty run {bursty} vs independent {indep}"
        );
    }

    #[test]
    fn bernoulli_extremes() {
        let mut always = LinkModel::new(LossProcess::Bernoulli(1.0), SimRng::new(9));
        assert!(!always.deliver());
        let mut never = LinkModel::new(LossProcess::Bernoulli(0.0), SimRng::new(9));
        assert!(never.deliver());
    }

    #[test]
    fn deterministic_given_seed() {
        let seq = |seed| {
            let mut l = LinkModel::new(LossProcess::Bernoulli(0.5), SimRng::new(seed));
            (0..64).map(|_| l.deliver()).collect::<Vec<_>>()
        };
        assert_eq!(seq(3), seq(3));
        assert_ne!(seq(3), seq(4));
    }
}
