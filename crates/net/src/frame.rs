//! Link-layer frame geometry.
//!
//! A payload handed to the MAC is fragmented into frames of at most
//! [`FrameFormat::max_payload`] bytes, each carrying a fixed header and
//! CRC; acknowledged frames also cost an ACK frame in the reverse
//! direction. The default geometry matches the TinyOS 1.x Mica2 stack
//! (29-byte payload, 7-byte header, 2-byte CRC, 10-byte ACK).

/// Frame geometry constants.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrameFormat {
    /// Maximum payload bytes per frame.
    pub max_payload: usize,
    /// Header bytes per frame (addresses, type, length, sequence).
    pub header_bytes: usize,
    /// Trailer CRC bytes per frame.
    pub crc_bytes: usize,
    /// Bytes in a link-layer acknowledgement frame.
    pub ack_bytes: usize,
}

impl Default for FrameFormat {
    fn default() -> Self {
        FrameFormat::tinyos_mica2()
    }
}

impl FrameFormat {
    /// TinyOS 1.x / Mica2 default geometry.
    pub fn tinyos_mica2() -> Self {
        FrameFormat {
            max_payload: 29,
            header_bytes: 7,
            crc_bytes: 2,
            ack_bytes: 10,
        }
    }

    /// 802.15.4-style geometry for Telos-class radios.
    pub fn ieee802154() -> Self {
        FrameFormat {
            max_payload: 102,
            header_bytes: 11,
            crc_bytes: 2,
            ack_bytes: 11,
        }
    }

    /// Number of frames needed for a payload of `len` bytes.
    ///
    /// A zero-length payload still takes one (empty) frame — commands and
    /// beacons have headers even when they carry no data.
    pub fn frames_for(&self, len: usize) -> usize {
        if len == 0 {
            1
        } else {
            len.div_ceil(self.max_payload)
        }
    }

    /// On-air bytes of a single frame carrying `payload` payload bytes.
    pub fn frame_wire_bytes(&self, payload: usize) -> usize {
        debug_assert!(payload <= self.max_payload);
        self.header_bytes + payload + self.crc_bytes
    }

    /// Total on-air bytes (excluding preambles and ACKs) for `len` payload
    /// bytes after fragmentation.
    pub fn wire_bytes(&self, len: usize) -> usize {
        let full = len / self.max_payload;
        let rem = len % self.max_payload;
        let mut total = full * self.frame_wire_bytes(self.max_payload);
        if rem > 0 || len == 0 {
            total += self.frame_wire_bytes(rem);
        }
        total
    }

    /// Sizes of the individual fragments of a `len`-byte payload.
    pub fn fragment_sizes(&self, len: usize) -> Vec<usize> {
        if len == 0 {
            return vec![0];
        }
        let mut out = Vec::with_capacity(self.frames_for(len));
        let mut rem = len;
        while rem > 0 {
            let take = rem.min(self.max_payload);
            out.push(take);
            rem -= take;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn frames_for_counts() {
        let f = FrameFormat::tinyos_mica2();
        assert_eq!(f.frames_for(0), 1);
        assert_eq!(f.frames_for(1), 1);
        assert_eq!(f.frames_for(29), 1);
        assert_eq!(f.frames_for(30), 2);
        assert_eq!(f.frames_for(58), 2);
        assert_eq!(f.frames_for(59), 3);
    }

    #[test]
    fn wire_bytes_includes_overhead_per_frame() {
        let f = FrameFormat::tinyos_mica2();
        // One full frame: 7 + 29 + 2 = 38 bytes.
        assert_eq!(f.wire_bytes(29), 38);
        // Two frames, second has 1 byte: 38 + (7 + 1 + 2) = 48.
        assert_eq!(f.wire_bytes(30), 48);
        // Empty command frame: 9 bytes of pure overhead.
        assert_eq!(f.wire_bytes(0), 9);
    }

    #[test]
    fn fragment_sizes_cover_payload() {
        let f = FrameFormat::tinyos_mica2();
        assert_eq!(f.fragment_sizes(0), vec![0]);
        assert_eq!(f.fragment_sizes(29), vec![29]);
        assert_eq!(f.fragment_sizes(40), vec![29, 11]);
    }

    proptest! {
        #[test]
        fn fragments_sum_to_payload(len in 0usize..4096) {
            let f = FrameFormat::tinyos_mica2();
            let frags = f.fragment_sizes(len);
            prop_assert_eq!(frags.iter().sum::<usize>(), len);
            prop_assert_eq!(frags.len(), f.frames_for(len));
            for (i, &s) in frags.iter().enumerate() {
                prop_assert!(s <= f.max_payload);
                // Only the final fragment may be partial.
                if i + 1 < frags.len() {
                    prop_assert_eq!(s, f.max_payload);
                }
            }
        }

        #[test]
        fn wire_bytes_matches_fragments(len in 0usize..4096) {
            let f = FrameFormat::ieee802154();
            let by_frag: usize = f
                .fragment_sizes(len)
                .iter()
                .map(|&s| f.frame_wire_bytes(s))
                .sum();
            prop_assert_eq!(f.wire_bytes(len), by_frag);
        }
    }
}
