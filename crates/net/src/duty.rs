//! Radio duty cycling.
//!
//! A PRESTO sensor keeps its radio asleep except for periodic LPL channel
//! probes. The proxy's query–sensor matching (paper §3) chooses the check
//! interval from query latency requirements: a query class with a worst
//! case notification latency of `L` lets the sensor probe as rarely as
//! every `L`, paying `L/2` expected wake latency in exchange for less
//! idle listening.

use presto_sim::{EnergyCategory, EnergyLedger, SimDuration};

use crate::energy::RadioModel;

/// A low-power-listening duty cycle schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct DutyCycle {
    /// Interval between channel probes; zero means the radio listens
    /// continuously (a tethered node).
    pub check_interval: SimDuration,
}

impl DutyCycle {
    /// Always-on listening (proxies).
    pub fn always_on() -> Self {
        DutyCycle {
            check_interval: SimDuration::ZERO,
        }
    }

    /// Probe every `interval`.
    pub fn lpl(interval: SimDuration) -> Self {
        DutyCycle {
            check_interval: interval,
        }
    }

    /// The laziest duty cycle that still meets a worst-case notification
    /// latency bound: the downlink preamble spans one check interval, so
    /// the check interval simply equals the bound (minus a small guard).
    pub fn for_latency_bound(bound: SimDuration) -> Self {
        if bound.is_zero() {
            return DutyCycle::always_on();
        }
        // 10% guard for preamble detection and frame time.
        let interval = SimDuration::from_secs_f64(bound.as_secs_f64() * 0.9);
        DutyCycle::lpl(interval)
    }

    /// Average listening power under this schedule, in watts.
    pub fn average_listen_power(&self, radio: &RadioModel) -> f64 {
        if self.check_interval.is_zero() {
            return radio.rx_power_w;
        }
        let probes_per_sec = 1.0 / self.check_interval.as_secs_f64();
        probes_per_sec * radio.probe_energy() + radio.sleep_power_w
    }

    /// Joules of idle listening over `window`, charged to the ledger.
    pub fn charge_listening(
        &self,
        radio: &RadioModel,
        window: SimDuration,
        ledger: &mut EnergyLedger,
    ) -> f64 {
        let j = self.average_listen_power(radio) * window.as_secs_f64();
        ledger.charge(EnergyCategory::RadioListen, j);
        j
    }

    /// Expected latency to reach this node with a wake-up preamble:
    /// half a check interval on average (zero when always on).
    pub fn expected_wake_latency(&self) -> SimDuration {
        self.check_interval / 2
    }

    /// Worst-case latency to reach this node: one full check interval.
    pub fn worst_wake_latency(&self) -> SimDuration {
        self.check_interval
    }

    /// Fraction of time the radio is on (probe duty).
    pub fn duty_fraction(&self, radio: &RadioModel) -> f64 {
        if self.check_interval.is_zero() {
            return 1.0;
        }
        (radio.lpl_probe.as_secs_f64() / self.check_interval.as_secs_f64()).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_on_costs_full_rx_power() {
        let r = RadioModel::mica2();
        let d = DutyCycle::always_on();
        assert_eq!(d.average_listen_power(&r), r.rx_power_w);
        assert_eq!(d.expected_wake_latency(), SimDuration::ZERO);
        assert_eq!(d.duty_fraction(&r), 1.0);
    }

    #[test]
    fn slower_probing_is_cheaper() {
        let r = RadioModel::mica2();
        let fast = DutyCycle::lpl(SimDuration::from_millis(100));
        let slow = DutyCycle::lpl(SimDuration::from_secs(2));
        assert!(slow.average_listen_power(&r) < fast.average_listen_power(&r));
        assert!(slow.duty_fraction(&r) < fast.duty_fraction(&r));
    }

    #[test]
    fn one_second_lpl_listen_budget() {
        // 1 probe/s × 90 µJ + 3 µW sleep ≈ 93 µW average.
        let r = RadioModel::mica2();
        let d = DutyCycle::lpl(SimDuration::from_secs(1));
        let p = d.average_listen_power(&r);
        assert!((p - 93e-6).abs() < 1e-6, "{p}");
        // Over a day that is ~8 J — two orders below an always-on radio.
        let day = p * 86_400.0;
        assert!((7.0..9.0).contains(&day), "{day}");
        assert!(day < r.rx_power_w * 86_400.0 / 100.0);
    }

    #[test]
    fn latency_bound_maps_to_interval() {
        let d = DutyCycle::for_latency_bound(SimDuration::from_mins(10));
        assert!(d.worst_wake_latency() <= SimDuration::from_mins(10));
        assert!(d.worst_wake_latency() > SimDuration::from_mins(8));
        assert_eq!(
            DutyCycle::for_latency_bound(SimDuration::ZERO),
            DutyCycle::always_on()
        );
    }

    #[test]
    fn charge_listening_accrues_to_ledger() {
        let r = RadioModel::mica2();
        let d = DutyCycle::lpl(SimDuration::from_secs(1));
        let mut l = EnergyLedger::new();
        let j = d.charge_listening(&r, SimDuration::from_hours(1), &mut l);
        assert!((l.category(EnergyCategory::RadioListen) - j).abs() < 1e-12);
        assert!(j > 0.0);
    }

    #[test]
    fn wake_latency_halves_check_interval() {
        let d = DutyCycle::lpl(SimDuration::from_secs(4));
        assert_eq!(d.expected_wake_latency(), SimDuration::from_secs(2));
        assert_eq!(d.worst_wake_latency(), SimDuration::from_secs(4));
    }
}
