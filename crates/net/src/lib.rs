//! Mote platform model for the PRESTO reproduction.
//!
//! The paper's testbed hardware (Mica2-class motes with CC1000 radios,
//! low-power-listening MACs, and dataflash) is replaced here by a
//! parameterized platform model. Everything the experiments need from the
//! hardware reduces to four questions, each answered by one module:
//!
//! * how many joules does it cost to move N bytes over the air, including
//!   preambles/headers/ACKs/retransmissions? — [`mac`]
//! * what does the frame geometry do to payloads? — [`frame`]
//! * do individual frames get lost, and in what pattern? — [`link`]
//! * what does idle listening cost as a function of the duty cycle, and
//!   how long until a sleeping node can be reached? — [`duty`]
//!
//! [`energy`] holds the calibrated hardware constants (Mica2 and Telos
//! presets) and the CPU/flash cost models shared by the other crates.

pub mod duty;
pub mod energy;
pub mod frame;
pub mod link;
pub mod mac;

pub use duty::DutyCycle;
pub use energy::{CpuModel, FlashModel, PlatformModel, RadioModel};
pub use frame::FrameFormat;
pub use link::{GilbertElliott, LinkModel, LossProcess, SharedLossState};
pub use mac::{Mac, TxOutcome};
