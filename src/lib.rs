//! # PRESTO — a predictive storage architecture for sensor networks
//!
//! A from-scratch Rust reproduction of *"PRESTO: A Predictive Storage
//! Architecture for Sensor Networks"* (Desnoyers, Ganesan, Li, Li,
//! Shenoy — HotOS X, 2005), including every substrate the paper relies
//! on: a discrete-event mote/radio simulator, wavelet compression and
//! aging, prediction models, a flash archival store, the proxy and
//! sensor tiers, a Skip Graph distributed index, synthetic workloads,
//! and the baseline architectures the paper compares against.
//!
//! ## Quickstart
//!
//! ```
//! use presto::core::{PrestoSystem, StoreQuery, SystemConfig, UnifiedStore};
//! use presto::sim::SimDuration;
//!
//! // A small deployment: 2 proxies × 3 sensors, default lab workload.
//! let mut system = PrestoSystem::new(SystemConfig {
//!     proxies: 2,
//!     sensors_per_proxy: 3,
//!     ..SystemConfig::default()
//! });
//! system.run(SimDuration::from_hours(12));
//!
//! // Query the unified logical store.
//! let mut store = UnifiedStore::new(&mut system);
//! let answer = store.query(StoreQuery::Now {
//!     sensor: 4,
//!     tolerance: 1.0,
//! });
//! assert!(answer.value.is_some());
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |--------|----------|
//! | [`sim`] | discrete-event kernel: time, events, RNG, energy ledgers |
//! | [`net`] | Mica2-class radio/MAC/duty-cycle/flash energy models |
//! | [`wavelet`] | Haar/DB4 transforms, denoising, codec, aging ladder |
//! | [`models`] | seasonal / AR / Markov / spatial prediction models |
//! | [`archive`] | mote-local flash archival store with time index |
//! | [`sensor`] | the PRESTO sensor node and its push policies |
//! | [`proxy`] | the PRESTO proxy: cache, engine, matching, pulls |
//! | [`reliability`] | lossy message fabric, liveness leases, archive-backed recovery |
//! | [`index`] | Skip Graph, clock correction, replication, unified view |
//! | [`workloads`] | lab temperature / traffic / eldercare / queries |
//! | [`baselines`] | direct-query, streaming, value-driven comparators |
//! | [`core`] | the assembled three-tier system + unified store |
//! | [`fleet`] | cross-proxy deployment tier: shedding, proxy failover, re-homing |
//! | [`telemetry`] | metrics registry, per-query trace spans, epoch profiler |

pub use presto_archive as archive;
pub use presto_baselines as baselines;
pub use presto_core as core;
pub use presto_fleet as fleet;
pub use presto_index as index;
pub use presto_models as models;
pub use presto_net as net;
pub use presto_proxy as proxy;
pub use presto_reliability as reliability;
pub use presto_sensor as sensor;
pub use presto_sim as sim;
pub use presto_telemetry as telemetry;
pub use presto_wavelet as wavelet;
pub use presto_workloads as workloads;

/// Commonly used items, importable as `use presto::prelude::*`.
pub mod prelude {
    pub use presto_core::{PrestoSystem, StoreQuery, StoreResponse, SystemConfig, UnifiedStore};
    pub use presto_proxy::{AnswerSource, PrestoProxy, ProxyConfig};
    pub use presto_sensor::{PushPolicy, SensorConfig, SensorNode};
    pub use presto_sim::{EnergyCategory, EnergyLedger, SimDuration, SimRng, SimTime};
    pub use presto_workloads::{LabDeployment, LabParams};
}
