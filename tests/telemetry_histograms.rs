//! Log-linear histogram properties: for ANY sample stream, a reported
//! quantile stays within one bucket width of the exact nearest-rank
//! quantile (bucket counts are exact, only in-bucket position is
//! lost), and merging histograms is indistinguishable from having
//! recorded the concatenated stream in one histogram.

use proptest::prelude::*;

use presto::telemetry::LogHistogram;

fn hist_of(xs: &[u64]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for &x in xs {
        h.record(x);
    }
    h
}

/// Exact nearest-rank quantile of the raw samples.
fn exact_quantile(xs: &[u64], q: f64) -> u64 {
    let mut sorted = xs.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The histogram's quantile never undershoots the exact
    /// nearest-rank value and never overshoots the top of the bucket
    /// that value falls in — i.e. the error is at most one bucket
    /// width at that magnitude. Checked for a random quantile and for
    /// the endpoints (min and max must be exact).
    #[test]
    fn quantile_within_one_bucket_width(
        xs in proptest::collection::vec(0u64..4_000_000_000, 1..200),
        q in 0.0f64..1.0,
    ) {
        let h = hist_of(&xs);
        for q in [q, 0.0, 1.0] {
            let exact = exact_quantile(&xs, q);
            let got = h.quantile(q);
            let (lo, hi) = LogHistogram::bucket_bounds_of(exact);
            prop_assert!(
                exact <= got && got <= hi,
                "quantile({}) = {}, exact nearest-rank {}, bucket [{}, {}]",
                q, got, exact, lo, hi
            );
        }
        prop_assert_eq!(h.quantile(1.0), h.max());
    }

    /// merge() is exactly concatenation: recording two streams into
    /// separate histograms and merging equals one histogram fed both.
    #[test]
    fn merge_equals_concat(
        xs in proptest::collection::vec(0u64..4_000_000_000, 0..150),
        ys in proptest::collection::vec(0u64..4_000_000_000, 0..150),
    ) {
        let mut merged = hist_of(&xs);
        merged.merge(&hist_of(&ys));

        let mut both = xs.to_vec();
        both.extend_from_slice(&ys);
        let concat = hist_of(&both);

        prop_assert_eq!(&merged, &concat);
        prop_assert_eq!(merged.count(), (xs.len() + ys.len()) as u64);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(merged.quantile(q), concat.quantile(q));
        }
    }
}
