//! Slice-equivalence property: for ANY seeded workload and ANY downlink
//! loss trace, every answer the **sliced** pipeline completes is
//! value-identical to the blocking reference executing the same slice
//! plan (per-slice pulls, assembled and trimmed the same way — the
//! reply codec is applied per reply, so the blocking reference must
//! pull the same canonical slice windows). Every other query fails
//! honestly by its deadline, no slice sub-RPC leaks from the channel,
//! and the two-tier cache's accounting balances:
//! `lookups == l1_hits + l2_hits + misses` and `promotions <= l2_hits`.

use proptest::prelude::*;

use presto::proxy::slice::{assemble, plan, SliceConfig};
use presto::proxy::{AnswerSource, PipelineAnswer, PipelineQuery, PrestoProxy, ProxyConfig};
use presto::reliability::{DownlinkChannel, DownlinkConfig};
use presto::net::{LinkModel, LossProcess};
use presto::sensor::{PushPolicy, SensorConfig, SensorNode};
use presto::sim::{SimDuration, SimTime};

const EPOCH: SimDuration = SimDuration::from_secs(31);

fn diurnal(t: SimTime) -> f64 {
    21.0 + 4.0 * ((t.hour_of_day() - 14.0) / 24.0 * std::f64::consts::TAU).cos()
}

/// A sensor with one day of archived samples, never pushing. Every
/// queried slice span lies inside the archived day, so cached slices
/// are complete (immutable) by construction.
fn archived_node() -> SensorNode {
    let mut n = SensorNode::new(
        0,
        SensorConfig {
            push: PushPolicy::Silent,
            ..SensorConfig::default()
        },
        LinkModel::perfect(),
    );
    for i in 0..(86_400 / 31) {
        let t = SimTime::from_secs(31 * i);
        n.on_sample(t, diurnal(t), None);
    }
    n
}

/// The slice geometry under test: small tiers so the property also
/// exercises demotion and promotion, not just inserts.
fn slice_cfg() -> SliceConfig {
    SliceConfig {
        slice_len: SimDuration::from_hours(1),
        min_slices: 2,
        l1_capacity: 4,
        l2_capacity: 8,
        ..SliceConfig::default()
    }
}

/// A proxy with sliced execution on and every radio-free fast path off,
/// so queries exercise the slice/pull machinery.
fn sliced_proxy() -> PrestoProxy {
    let mut cfg = ProxyConfig {
        past_coverage_hit: f64::INFINITY,
        ..ProxyConfig::default()
    };
    cfg.pipeline.slice = Some(slice_cfg());
    let mut p = PrestoProxy::new(cfg);
    p.register_sensor(0);
    p
}

/// The blocking reference's proxy: identical, fast paths off. Slicing
/// is irrelevant to it — the reference drives `answer_past` directly.
fn ref_proxy() -> PrestoProxy {
    let mut p = PrestoProxy::new(ProxyConfig {
        past_coverage_hit: f64::INFINITY,
        ..ProxyConfig::default()
    });
    p.register_sensor(0);
    p
}

fn scripted_channel(request: Vec<bool>, reply: Vec<bool>) -> DownlinkChannel {
    DownlinkChannel::new(
        DownlinkConfig {
            request_loss: LossProcess::Scripted(request.into()),
            reply_loss: LossProcess::Scripted(reply.into()),
            ..DownlinkConfig::default()
        },
        LinkModel::perfect(),
    )
}

/// Workload atom. Codes 0..=4 are overlapping multi-slice PAST windows
/// (the sliced path), 5..=6 single-slice PAST windows (monolithic even
/// with slicing on), the rest NOW. Tolerance alternates so slice keys
/// are exercised across distinct tolerances.
fn decode(code: u8) -> PipelineQuery {
    let tolerance = if code.is_multiple_of(2) { 0.2 } else { 0.4 };
    match code % 8 {
        k @ 0..=4 => {
            // [k+1 h + 7 min, k+3 h + 11 min]: spans three 1-hour
            // slices, overlapping the neighboring codes' windows so
            // queries share slices without sharing windows.
            let from = SimTime::from_hours(k as u64 + 1) + SimDuration::from_mins(7);
            let to = SimTime::from_hours(k as u64 + 3) + SimDuration::from_mins(11);
            PipelineQuery::Past {
                sensor: 0,
                from,
                to,
                tolerance,
            }
        }
        k @ 5..=6 => {
            // 40 minutes inside one slice: stays monolithic.
            let from = SimTime::from_hours(2 * k as u64) + SimDuration::from_mins(10);
            let to = from + SimDuration::from_mins(40);
            PipelineQuery::Past {
                sensor: 0,
                from,
                to,
                tolerance,
            }
        }
        _ => PipelineQuery::Now {
            sensor: 0,
            tolerance: 0.2,
        },
    }
}

/// The blocking reference for a PAST query under sliced execution: run
/// the same slice plan through the synchronous path (one blocking pull
/// per canonical slice window), assemble, trim. A window the calculator
/// keeps monolithic is referenced by one blocking pull of the window
/// itself. Panics if any reference pull fails (the channel is perfect).
fn reference_past(
    q: PipelineQuery,
    t: SimTime,
    p: &mut PrestoProxy,
    chan: &mut DownlinkChannel,
    node: &mut SensorNode,
) -> Vec<(SimTime, f64)> {
    let PipelineQuery::Past {
        sensor,
        from,
        to,
        tolerance,
    } = q
    else {
        panic!("reference_past wants a PAST query");
    };
    match plan(sensor, from, to, tolerance, &slice_cfg()) {
        Some(specs) => {
            let runs: Vec<Vec<(SimTime, f64)>> = specs
                .iter()
                .map(|spec| {
                    let a = p.answer_past(t, sensor, spec.from, spec.to, tolerance, node, chan);
                    assert_eq!(a.source, AnswerSource::Pulled, "reference slice pull failed");
                    a.samples
                })
                .collect();
            assemble(&runs, from, to)
        }
        None => {
            let a = p.answer_past(t, sensor, from, to, tolerance, node, chan);
            assert_eq!(a.source, AnswerSource::Pulled, "reference pull failed");
            a.samples
        }
    }
}

/// Runs the sliced pipeline over the workload under the given loss
/// traces and checks every completion. Returns (pulled, failed).
fn run_and_check(
    workload: &[(u8, u8)],
    request: Vec<bool>,
    reply: Vec<bool>,
) -> (usize, usize) {
    let base = SimTime::from_days(2);
    let mut p = sliced_proxy();
    let mut node = archived_node();
    let mut chan = scripted_channel(request, reply);
    let mut rp = ref_proxy();
    let mut ref_node = archived_node();
    let mut ref_chan = DownlinkChannel::perfect();

    let horizon: u64 = 24;
    let deadline = p.config().pipeline.deadline;
    let drain = deadline.div_duration(EPOCH) + 2;
    let mut expectations = std::collections::HashMap::new();
    let mut submitted = 0usize;
    let mut multi_slice = 0u64;
    for e in 0..horizon + drain {
        let t = base + EPOCH * e;
        if e < horizon {
            for &(ep, code) in workload.iter().filter(|&&(ep, _)| ep as u64 % horizon == e) {
                let _ = ep;
                let q = decode(code);
                if code % 8 <= 4 {
                    multi_slice += 1;
                }
                let ticket = p.submit_query(t, q);
                expectations.insert(ticket, (q, t));
                submitted += 1;
            }
        }
        p.pump_queries(t, 0, std::slice::from_mut(&mut node), std::slice::from_mut(&mut chan));
    }

    let done = p.take_completed_queries();
    prop_assert_eq!(done.len(), submitted, "every query must terminate");
    // Zero leaked slice sub-requests: nothing pending, nothing left in
    // the channel's pending-RPC table or its in-flight set.
    prop_assert_eq!(p.pipeline().pending_queries(), 0);
    prop_assert_eq!(chan.async_in_flight(), 0);
    prop_assert_eq!(chan.outstanding_rpcs(), 0);

    // Every multi-slice PAST submission took the sliced path.
    prop_assert_eq!(p.pipeline().stats().sliced, multi_slice);

    // Two-tier accounting balances.
    let s = p.pipeline().slice_cache().stats();
    prop_assert_eq!(s.lookups, s.l1_hits + s.l2_hits + s.misses);
    prop_assert!(s.promotions <= s.l2_hits, "promotions {} > l2 hits {}", s.promotions, s.l2_hits);
    prop_assert_eq!(s.incomplete_skips, 0, "all queried slice spans are fully archived");

    let mut pulled = 0usize;
    let mut failed = 0usize;
    for c in done {
        let (q, t_sub) = expectations.remove(&c.id).expect("unknown ticket");
        prop_assert!(
            c.completed_at <= t_sub + deadline + EPOCH,
            "query completed after its deadline"
        );
        match c.answer.source() {
            AnswerSource::Failed => {
                failed += 1;
                if let PipelineAnswer::Scalar(a) = &c.answer {
                    prop_assert!(a.sigma.is_infinite(), "failed scalar must advertise sigma ∞");
                }
            }
            AnswerSource::Pulled => {
                pulled += 1;
                match (&c.answer, q) {
                    (PipelineAnswer::Series(a), PipelineQuery::Past { .. }) => {
                        let reference =
                            reference_past(q, t_sub, &mut rp, &mut ref_chan, &mut ref_node);
                        prop_assert_eq!(
                            &a.samples, &reference,
                            "slice-assembled answer diverged from the blocking reference"
                        );
                    }
                    (PipelineAnswer::Scalar(a), PipelineQuery::Now { sensor, tolerance }) => {
                        let r = rp.answer_now(t_sub, sensor, tolerance, &mut ref_node, &mut ref_chan);
                        prop_assert_eq!(r.source, AnswerSource::Pulled, "reference must pull");
                        prop_assert_eq!(a.value, r.value, "NOW value diverged");
                        prop_assert_eq!(a.sigma, r.sigma, "NOW sigma diverged");
                    }
                    _ => prop_assert!(false, "answer shape diverged from the query"),
                }
            }
            other => prop_assert!(false, "unexpected completion source {:?}", other),
        }
    }
    (pulled, failed)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16 })]

    /// Any workload × any loss trace: slice-assembled answers are
    /// value-identical to the blocking per-slice reference; the rest
    /// fail honestly; nothing leaks; tier accounting balances.
    #[test]
    fn sliced_pipeline_matches_reference_or_fails_honestly(
        workload in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..32),
        request in proptest::collection::vec(any::<bool>(), 1..64),
        reply in proptest::collection::vec(any::<bool>(), 1..64),
    ) {
        run_and_check(&workload, request, reply);
    }

    /// A lossless channel: everything completes and matches.
    #[test]
    fn sliced_lossless_completes_everything(
        workload in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..24),
    ) {
        let (pulled, failed) = run_and_check(&workload, vec![true], vec![true]);
        prop_assert_eq!(pulled, workload.len());
        prop_assert_eq!(failed, 0);
    }

    /// A 100% request-loss burst: nothing completes (no slice can be
    /// fetched, so no partial assembly can masquerade as an answer),
    /// everything fails honestly, nothing leaks.
    #[test]
    fn sliced_total_burst_fails_everything_honestly(
        workload in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..24),
    ) {
        let (pulled, failed) = run_and_check(&workload, vec![false], vec![true]);
        prop_assert_eq!(pulled, 0);
        prop_assert_eq!(failed, workload.len());
    }
}

/// Containment serving falls out of slice assembly: once one window has
/// been pulled, a *different, narrower* window covered by the same
/// slices completes radio-free from the two-tier cache — the behavior
/// the old exact-match reply cache could never provide.
#[test]
fn sub_window_of_pulled_span_completes_radio_free() {
    let base = SimTime::from_days(2);
    let mut p = sliced_proxy();
    let mut node = archived_node();
    let mut chan = DownlinkChannel::perfect();

    let wide = PipelineQuery::Past {
        sensor: 0,
        from: SimTime::from_hours(1) + SimDuration::from_mins(7),
        to: SimTime::from_hours(3) + SimDuration::from_mins(11),
        tolerance: 0.2,
    };
    let t1 = p.submit_query(base, wide);
    for e in 0..20u64 {
        let t = base + EPOCH * e;
        p.pump_queries(t, 0, std::slice::from_mut(&mut node), std::slice::from_mut(&mut chan));
        if p.pipeline().completed_ready() > 0 {
            break;
        }
    }
    let done = p.take_completed_queries();
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].id, t1);
    assert_eq!(done[0].answer.source(), AnswerSource::Pulled);
    let rpcs_after_wide = p.pipeline().stats().rpcs_issued;
    assert_eq!(p.pipeline().stats().slice_rpcs, 3, "three slices pulled");

    // A narrower window over the same slices: radio-free, at submit.
    let narrow = PipelineQuery::Past {
        sensor: 0,
        from: SimTime::from_hours(1) + SimDuration::from_mins(37),
        to: SimTime::from_hours(2) + SimDuration::from_mins(41),
        tolerance: 0.2,
    };
    let t2 = p.submit_query(base + SimDuration::from_hours(1), narrow);
    let done = p.take_completed_queries();
    assert_eq!(done.len(), 1, "all-cached slices complete at submit");
    assert_eq!(done[0].id, t2);
    assert_eq!(done[0].answer.source(), AnswerSource::Pulled);
    assert_eq!(
        p.pipeline().stats().rpcs_issued,
        rpcs_after_wide,
        "no radio work for a contained window"
    );
    assert!(p.pipeline().stats().completed_cached >= 1);

    // And the radio-free answer is value-identical to the blocking
    // per-slice reference.
    let mut rp = ref_proxy();
    let mut ref_node = archived_node();
    let mut ref_chan = DownlinkChannel::perfect();
    let reference = reference_past(
        narrow,
        base + SimDuration::from_hours(1),
        &mut rp,
        &mut ref_chan,
        &mut ref_node,
    );
    match &done[0].answer {
        PipelineAnswer::Series(a) => assert_eq!(a.samples, reference),
        _ => panic!("PAST answers are series"),
    }
}
