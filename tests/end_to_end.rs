//! End-to-end integration: the full three-tier system answering queries
//! through the unified store, with accuracy checked against ground truth
//! and the paper's energy hierarchy verified on the aggregate ledgers.

use presto::core::{PrestoSystem, StoreQuery, SystemConfig, UnifiedStore};
use presto::proxy::AnswerSource;
use presto::sim::{EnergyCategory, SimDuration, SimTime};

fn trained_system(days: u64) -> PrestoSystem {
    let mut sys = PrestoSystem::new(SystemConfig {
        proxies: 2,
        sensors_per_proxy: 3,
        ..SystemConfig::default()
    });
    sys.run(SimDuration::from_days(days));
    sys
}

#[test]
fn now_queries_are_answered_within_tolerance_for_every_sensor() {
    let mut sys = trained_system(1);
    let truth = sys.truth.clone();
    let mut store = UnifiedStore::new(&mut sys);
    for sensor in 0..6u16 {
        let r = store.query(StoreQuery::Now {
            sensor,
            tolerance: 1.0,
        });
        assert_ne!(r.source, AnswerSource::Failed, "sensor {sensor} failed");
        let err = (r.value.expect("value present") - truth[sensor as usize]).abs();
        // Tolerance plus slack for in-flight epoch and lossy links.
        assert!(err < 2.0, "sensor {sensor} error {err}");
    }
}

#[test]
fn past_queries_reconstruct_history_across_the_day() {
    let mut sys = trained_system(1);
    let mut store = UnifiedStore::new(&mut sys);
    for (from_h, to_h) in [(2u64, 3u64), (12, 13), (20, 21)] {
        let r = store.query(StoreQuery::Past {
            sensor: 2,
            from: SimTime::from_hours(from_h),
            to: SimTime::from_hours(to_h),
            tolerance: 1.0,
        });
        assert_ne!(r.source, AnswerSource::Failed);
        assert!(
            r.series.len() > 50,
            "window {from_h}-{to_h}: only {} samples",
            r.series.len()
        );
        // Temporally ordered.
        assert!(r.series.windows(2).all(|w| w[0].0 <= w[1].0));
        // Plausible indoor temperatures.
        assert!(r.series.iter().all(|&(_, v)| (0.0..45.0).contains(&v)));
    }
}

#[test]
fn model_driven_push_beats_streaming_by_bytes() {
    let mut sys = trained_system(2);
    // After two days, total pushed bytes per sensor per day should be a
    // small fraction of what streaming every 15-byte sample would cost
    // (2787 samples/day ≈ 42 kB/day).
    let bytes: u64 = sys
        .nodes
        .iter_mut()
        .flatten()
        .map(|n| n.stats().bytes_sent)
        .sum();
    let per_sensor_day = bytes as f64 / 6.0 / 2.0;
    assert!(
        per_sensor_day < 20_000.0,
        "model-driven push too chatty: {per_sensor_day} B/day"
    );
}

#[test]
fn energy_hierarchy_radio_over_flash_over_cpu() {
    let sys = trained_system(1);
    let total = sys.sensor_ledger_total();
    let radio = total.radio_total();
    let flash = total.storage_total();
    let cpu = total.category(EnergyCategory::Cpu);
    assert!(radio > flash, "radio {radio} <= flash {flash}");
    assert!(flash > cpu, "flash {flash} <= cpu {cpu}");
    // The paper's orders-of-magnitude: radio dominates CPU by >= 10^3.
    assert!(radio / cpu > 1e3, "radio/cpu ratio {}", radio / cpu);
}

#[test]
fn rare_events_surface_in_the_unified_view() {
    let mut sys = PrestoSystem::new(SystemConfig {
        proxies: 2,
        sensors_per_proxy: 3,
        lab: presto::workloads::LabParams {
            events_per_day: 8.0,
            ..presto::workloads::LabParams::default()
        },
        ..SystemConfig::default()
    });
    sys.run(SimDuration::from_days(2));
    let mut store = UnifiedStore::new(&mut sys);
    let r = store.query(StoreQuery::Events {
        from: SimTime::ZERO,
        to: SimTime::from_days(2),
    });
    assert!(!r.events.is_empty(), "no rare events delivered");
    assert!(r.events.windows(2).all(|w| w[0].0 <= w[1].0));
}

#[test]
fn deterministic_end_to_end() {
    let energy = |seed: u64| {
        let mut sys = PrestoSystem::new(SystemConfig {
            proxies: 2,
            sensors_per_proxy: 2,
            seed,
            ..SystemConfig::default()
        });
        sys.run(SimDuration::from_hours(8));
        sys.sensor_ledger_total().total()
    };
    assert_eq!(energy(3), energy(3));
    assert_ne!(energy(3), energy(4));
}
