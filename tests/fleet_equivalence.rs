//! Fleet-equivalence property: for ANY Zipf/burst-shaped cross-proxy
//! workload × ANY downlink loss trace × ANY proxy-crash schedule ×
//! ANY inter-link quality — every answer the fleet completes (served
//! locally, shed to a peer over the mesh, or adopted after a proxy
//! death re-homed the sensor) is **value-identical** to the
//! single-proxy blocking reference pulling the same sensor's archive,
//! and every other query terminates honestly (`Failed`, sigma ∞ for
//! scalars) by its deadline plus the router's collection grace. No
//! hangs, no double terminals, no leaked router tickets, pipeline
//! entries, pending RPCs (home or cross-proxy), or mesh messages.
//!
//! Forwarding and failover may change *where* and *when* an answer is
//! produced, never *what* it says.
//!
//! Setup notes: the workload is the zero-noise lab series (per-sensor
//! offsets keep sensors distinguishable), so each sensor's archive is
//! an exact replayable function of the seed; radio-free fast paths are
//! disabled (`past_coverage_hit = ∞`, and push tolerance so wide that
//! extrapolation can never meet the query tolerances) so every real
//! answer is an archive pull. NOW queries are exercised by the
//! pipeline-level equivalence test (`tests/query_pipeline.rs`); the
//! fleet property covers the archive-range classes the router may
//! shed, whose answers are anchored to their windows rather than to
//! serve time.

use std::collections::HashMap;

use proptest::prelude::*;

use presto::core::SystemConfig;
use presto::fleet::{FleetConfig, FleetDeployment};
use presto::net::{GilbertElliott, LossProcess};
use presto::proxy::{
    AnswerSource, PipelineAnswer, PipelineQuery, PrestoProxy, ProxyConfig,
};
use presto::reliability::DownlinkChannel;
use presto::sensor::AggregateOp;
use presto::sim::{FaultPlan, SimDuration, SimTime};
use presto::workloads::{LabDeployment, LabParams};

const EPOCH: SimDuration = SimDuration::from_secs(31);
const PROXIES: usize = 3;
const SPP: usize = 2;
const WARMUP_EPOCHS: u64 = 12 * 3600 / 31; // 12 h
const PHASE_EPOCHS: u64 = 24;
const DRAIN_EPOCHS: u64 = 44; // deadline (10 m) + grace (3 m) + mesh slack

/// Deterministic per-sensor series: zero noise, per-sensor offsets.
fn quiet_lab() -> LabParams {
    LabParams {
        sensors: SPP,
        jitter_sigma: 0.0,
        heavy_prob: 0.0,
        field_sigma: 0.0,
        events_per_day: 0.0,
        ..LabParams::default()
    }
}

fn fleet(
    seed: u64,
    faults: FaultPlan,
    dl_req: Vec<bool>,
    dl_rep: Vec<bool>,
    mesh_mode: u8,
) -> FleetDeployment {
    let mut sys = SystemConfig {
        proxies: PROXIES,
        sensors_per_proxy: SPP,
        seed,
        lab: quiet_lab(),
        loss: 0.0,
        // So wide that neither model-driven silence nor extrapolation
        // can serve the tight query tolerances: every answer pulls.
        push_tolerance: 1e6,
        clock_skew_ppm: 0.0,
        proxy: ProxyConfig {
            past_coverage_hit: f64::INFINITY,
            ..ProxyConfig::default()
        },
        faults,
        ..SystemConfig::default()
    };
    sys.reliability.downlink.request_loss = LossProcess::Scripted(dl_req.into());
    sys.reliability.downlink.reply_loss = LossProcess::Scripted(dl_rep.into());
    let mut fc = FleetConfig {
        system: sys,
        ..FleetConfig::default()
    };
    // Shed readily so forwarding is exercised even by small workloads.
    fc.router.shed_threshold = 4.0;
    fc.router.shed_margin = 1.0;
    match mesh_mode % 3 {
        0 => {
            // Clean mesh: forwards always arrive.
            fc.interlink.link_chain = GilbertElliott {
                p_gb: 0.0,
                p_bg: 1.0,
                loss_good: 0.0,
                loss_bad: 1.0,
            };
            fc.interlink.shared_chain = None;
        }
        1 => {
            // Default: bursty private chains + shared fading.
        }
        _ => {
            // Dead mesh: every forward and return is lost; shed and
            // re-routed queries must fail honestly.
            fc.interlink.link_chain = GilbertElliott {
                p_gb: 1.0,
                p_bg: 0.0,
                loss_good: 1.0,
                loss_bad: 1.0,
            };
            fc.interlink.shared_chain = None;
        }
    }
    FleetDeployment::new(fc)
}

/// Workload atom → archive-range query over the warmed span.
fn decode(code: u8) -> (PipelineQuery, f64) {
    let sensor = ((code as usize) / 8) % (PROXIES * SPP);
    let k = (code % 8) as u64;
    let from = SimTime::from_hours(2) + SimDuration::from_mins(45) * k;
    let to = from + SimDuration::from_mins(30);
    if code.is_multiple_of(5) {
        (
            PipelineQuery::Aggregate {
                sensor: sensor as u16,
                from,
                to,
                op: AggregateOp::Mean,
            },
            0.05,
        )
    } else {
        (
            PipelineQuery::Past {
                sensor: sensor as u16,
                from,
                to,
                tolerance: 0.05,
            },
            0.05,
        )
    }
}

/// Replays the deployment's exact sensor series into fresh reference
/// nodes (the zero-noise lab is a pure function of the seed) and
/// answers each query through the blocking single-proxy path over a
/// perfect channel.
struct Reference {
    proxy: PrestoProxy,
    nodes: Vec<presto::sensor::SensorNode>,
    chans: Vec<DownlinkChannel>,
}

impl Reference {
    fn build(seed: u64, epochs: u64) -> Reference {
        let mut proxy = PrestoProxy::new(ProxyConfig {
            past_coverage_hit: f64::INFINITY,
            push_tolerance: 1e6,
            ..ProxyConfig::default()
        });
        let mut nodes: Vec<presto::sensor::SensorNode> = (0..PROXIES * SPP)
            .map(|gid| {
                proxy.register_sensor(gid as u16);
                presto::sensor::SensorNode::new(
                    gid as u16,
                    presto::sensor::SensorConfig {
                        push: presto::sensor::PushPolicy::Silent,
                        ..presto::sensor::SensorConfig::default()
                    },
                    presto::net::LinkModel::perfect(),
                )
            })
            .collect();
        for p in 0..PROXIES {
            let mut lab = LabDeployment::new(quiet_lab(), seed.wrapping_add(p as u64 * 101));
            for _ in 0..epochs {
                for (s, r) in lab.step().iter().enumerate() {
                    nodes[p * SPP + s].on_sample(r.timestamp, r.value, None);
                }
            }
        }
        let chans = (0..PROXIES * SPP).map(|_| DownlinkChannel::perfect()).collect();
        Reference {
            proxy,
            nodes,
            chans,
        }
    }

    fn answer(&mut self, q: PipelineQuery, t: SimTime) -> PipelineAnswer {
        let gid = q.sensor() as usize;
        match q {
            PipelineQuery::Past {
                sensor,
                from,
                to,
                tolerance,
            } => PipelineAnswer::Series(self.proxy.answer_past(
                t,
                sensor,
                from,
                to,
                tolerance,
                &mut self.nodes[gid],
                &mut self.chans[gid],
            )),
            PipelineQuery::Aggregate {
                sensor,
                from,
                to,
                op,
            } => PipelineAnswer::Scalar(self.proxy.answer_aggregate(
                t,
                sensor,
                from,
                to,
                op,
                &mut self.nodes[gid],
                &mut self.chans[gid],
            )),
            PipelineQuery::Now { .. } => unreachable!("workload emits range queries only"),
        }
    }
}

/// Runs the fleet over the workload and checks every terminal against
/// the reference. Returns (real answers, honest failures).
fn run_and_check(
    workload: &[(u8, u8, u8)],
    dl_req: Vec<bool>,
    dl_rep: Vec<bool>,
    mesh_mode: u8,
    crash: Option<(u8, u8)>,
) -> (usize, usize) {
    let seed = 0xF1EE7 ^ workload.len() as u64;
    let faults = match crash {
        Some((p, at)) => {
            let start = SimTime::ZERO + EPOCH * (WARMUP_EPOCHS + (at as u64 % PHASE_EPOCHS));
            FaultPlan::none().with_proxy_crash(
                p as usize % PROXIES,
                start,
                SimTime::from_hours(10_000),
            )
        }
        None => FaultPlan::none(),
    };
    let mut fleet = fleet(seed, faults, dl_req, dl_rep, mesh_mode);
    for _ in 0..WARMUP_EPOCHS {
        fleet.step_epoch();
    }
    let mut expected: HashMap<u64, (PipelineQuery, SimTime)> = HashMap::new();
    let mut terminals = Vec::new();
    for e in 0..PHASE_EPOCHS + DRAIN_EPOCHS {
        if e < PHASE_EPOCHS {
            let t = fleet.now();
            for &(ep, entry, code) in workload
                .iter()
                .filter(|&&(ep, _, _)| ep as u64 % PHASE_EPOCHS == e)
            {
                let _ = ep;
                let (q, tol) = decode(code);
                let ticket = fleet.submit(entry as usize % PROXIES, q, tol);
                expected.insert(ticket, (q, t));
            }
        }
        fleet.step_epoch();
        terminals.extend(fleet.take_completed());
    }

    prop_assert_eq!(
        terminals.len(),
        expected.len(),
        "every query must terminate exactly once — no hangs, no duplicates"
    );
    let leaks = fleet.leaks();
    prop_assert!(leaks.is_clean(), "leaked fleet state: {:?}", leaks);

    let total_epochs = WARMUP_EPOCHS + PHASE_EPOCHS + DRAIN_EPOCHS;
    let mut reference = Reference::build(seed, total_epochs);
    let now = fleet.now();
    let deadline_slack = SimDuration::from_mins(13) + EPOCH * 2;

    let (mut pulled, mut failed) = (0usize, 0usize);
    for c in terminals {
        let (q, t_sub) = expected.remove(&c.ticket).expect("unknown ticket");
        prop_assert!(
            c.completed_at <= t_sub + deadline_slack,
            "terminal after deadline + grace: {:?} vs {:?}",
            c.completed_at,
            t_sub + deadline_slack
        );
        match c.answer.source() {
            AnswerSource::Failed => {
                failed += 1;
                if let PipelineAnswer::Scalar(a) = &c.answer {
                    prop_assert!(a.sigma.is_infinite(), "failed scalar must advertise sigma ∞");
                }
            }
            AnswerSource::Pulled => {
                pulled += 1;
                let reference = reference.answer(q, now);
                match (&c.answer, &reference) {
                    (PipelineAnswer::Series(a), PipelineAnswer::Series(r)) => {
                        prop_assert_eq!(r.source, AnswerSource::Pulled, "reference must pull");
                        prop_assert_eq!(
                            &a.samples,
                            &r.samples,
                            "fleet served different data than the blocking reference \
                             (forwarded: {}, served_by {})",
                            c.forwarded,
                            c.served_by
                        );
                    }
                    (PipelineAnswer::Scalar(a), PipelineAnswer::Scalar(r)) => {
                        prop_assert_eq!(r.source, AnswerSource::Pulled, "reference must pull");
                        prop_assert_eq!(a.value, r.value, "aggregate value diverged");
                        prop_assert_eq!(a.sigma, r.sigma, "aggregate sigma diverged");
                    }
                    _ => prop_assert!(false, "answer shape diverged from reference"),
                }
            }
            other => prop_assert!(
                false,
                "fleet produced {:?} — fast paths are disabled, only Pulled/Failed possible",
                other
            ),
        }
    }
    (pulled, failed)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8 })]

    /// Any workload × any loss trace × any crash schedule × any mesh:
    /// completed answers are value-identical to the blocking
    /// single-proxy reference; the rest fail honestly by deadline.
    #[test]
    fn fleet_matches_reference_or_fails_honestly(
        workload in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..24),
        dl_req in proptest::collection::vec(any::<bool>(), 1..48),
        dl_rep in proptest::collection::vec(any::<bool>(), 1..48),
        mesh_mode in any::<u8>(),
        crash in (any::<bool>(), any::<u8>(), any::<u8>()),
    ) {
        let crash = crash.0.then_some((crash.1, crash.2));
        run_and_check(&workload, dl_req, dl_rep, mesh_mode, crash);
    }

    /// Clean channels, no crash: everything completes and matches.
    #[test]
    fn fleet_lossless_completes_everything(
        workload in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..16),
    ) {
        let (pulled, failed) = run_and_check(&workload, vec![true], vec![true], 0, None);
        prop_assert_eq!(pulled, workload.len());
        prop_assert_eq!(failed, 0);
    }

    /// Dead downlinks everywhere: nothing real can be served — every
    /// query fails honestly, across shedding and the mesh included.
    #[test]
    fn fleet_total_downlink_loss_fails_everything_honestly(
        workload in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..12),
        mesh_mode in any::<u8>(),
    ) {
        let (pulled, failed) = run_and_check(&workload, vec![false], vec![true], mesh_mode, None);
        prop_assert_eq!(pulled, 0, "nothing can pull through dead downlinks");
        prop_assert_eq!(failed, workload.len());
    }
}
