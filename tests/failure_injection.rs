//! Failure injection across tiers: lossy links, unreachable sensors,
//! and model-update loss must degrade the system gracefully, never
//! silently corrupt answers.

use presto::net::{LinkModel, LossProcess};
use presto::proxy::{AnswerSource, PrestoProxy, ProxyConfig};
use presto::reliability::DownlinkChannel;
use presto::sensor::{PushPolicy, SensorConfig, SensorNode};
use presto::sim::{SimDuration, SimRng, SimTime};
use presto::workloads::{LabDeployment, LabParams};

fn lab_trace(days: u64, seed: u64) -> Vec<presto::workloads::lab::LabReading> {
    LabDeployment::single_sensor_trace(
        LabParams {
            events_per_day: 0.0,
            ..LabParams::default()
        },
        seed,
        SimDuration::from_days(days),
    )
}

fn paired(push: PushPolicy, loss: f64, seed: u64) -> (PrestoProxy, SensorNode, DownlinkChannel) {
    let mut proxy = PrestoProxy::new(ProxyConfig::default());
    proxy.register_sensor(0);
    let uplink = if loss > 0.0 {
        LinkModel::new(LossProcess::Bernoulli(loss), SimRng::new(seed))
    } else {
        LinkModel::perfect()
    };
    let node = SensorNode::new(
        0,
        SensorConfig {
            push,
            ..SensorConfig::default()
        },
        uplink,
    );
    let downlink = if loss > 0.0 {
        DownlinkChannel::over(LinkModel::new(LossProcess::Bernoulli(loss), SimRng::new(seed ^ 1)))
    } else {
        DownlinkChannel::perfect()
    };
    (proxy, node, downlink)
}

#[test]
fn bursty_loss_degrades_but_does_not_corrupt() {
    let trace = lab_trace(2, 31);
    let (mut proxy, mut node, mut link) =
        paired(PushPolicy::ModelDriven { tolerance: 1.0 }, 0.25, 5);
    let mut trained = false;
    for (i, r) in trace.iter().enumerate() {
        for msg in node.on_sample(r.timestamp, r.value, None) {
            proxy.on_uplink(&msg);
        }
        if i % 240 == 0 {
            trained |= proxy.maybe_train_and_push(r.timestamp, 0, &mut node, &mut link);
        }
    }
    assert!(trained, "model never installed despite retries");
    // Queries still answer; errors stay bounded by tolerance-class slack.
    let last = trace.last().expect("non-empty trace");
    let a = proxy.answer_now(last.timestamp, 0, 1.5, &mut node, &mut link);
    assert_ne!(a.source, AnswerSource::Failed);
    assert!(
        (a.value - last.value).abs() < 3.0,
        "answer {} truth {}",
        a.value,
        last.value
    );
}

#[test]
fn dead_sensor_yields_failed_answers_not_garbage() {
    let (mut proxy, mut node, _) = paired(PushPolicy::Silent, 0.0, 6);
    // The sensor never reports and the downlink is completely dead.
    let mut dead = DownlinkChannel::over(LinkModel::new(LossProcess::Bernoulli(1.0), SimRng::new(9)));
    let a = proxy.answer_now(SimTime::from_hours(1), 0, 0.5, &mut node, &mut dead);
    assert_eq!(a.source, AnswerSource::Failed);
    assert!(
        a.sigma.is_infinite(),
        "failed answers must advertise no confidence"
    );
    assert!(proxy.stats().pull_failures >= 1);
}

#[test]
fn sensor_that_stops_midway_still_serves_its_past() {
    let trace = lab_trace(1, 32);
    let (mut proxy, mut node, mut link) =
        paired(PushPolicy::ModelDriven { tolerance: 1.0 }, 0.0, 7);
    // Sensor alive for the first half only.
    let half = trace.len() / 2;
    for (i, r) in trace[..half].iter().enumerate() {
        for msg in node.on_sample(r.timestamp, r.value, None) {
            proxy.on_uplink(&msg);
        }
        if i % 240 == 0 {
            proxy.maybe_train_and_push(r.timestamp, 0, &mut node, &mut link);
        }
    }
    // Hours later, a PAST query over the live period pulls the archive.
    let query_t = trace.last().expect("non-empty").timestamp;
    let a = proxy.answer_past(
        query_t,
        0,
        SimTime::from_hours(3),
        SimTime::from_hours(4),
        0.2,
        &mut node,
        &mut link,
    );
    assert_ne!(a.source, AnswerSource::Failed);
    assert!(a.samples.len() > 80, "{} samples", a.samples.len());
}

#[test]
fn lost_model_update_never_installs_a_divergent_replica() {
    let trace = lab_trace(2, 33);
    let (mut proxy, mut node, _) = paired(PushPolicy::ModelDriven { tolerance: 1.0 }, 0.0, 8);
    let mut dead = DownlinkChannel::over(LinkModel::new(LossProcess::Bernoulli(1.0), SimRng::new(10)));
    for r in &trace[..3000] {
        for msg in node.on_sample(r.timestamp, r.value, None) {
            proxy.on_uplink(&msg);
        }
    }
    let t = trace[3000].timestamp;
    let installed = proxy.maybe_train_and_push(t, 0, &mut node, &mut dead);
    assert!(!installed, "claimed install over a dead downlink");
    assert!(!node.has_model());
    // The sensor keeps pushing everything (safe default).
    let r = &trace[3001];
    let msgs = node.on_sample(r.timestamp, r.value, None);
    assert_eq!(msgs.len(), 1);
}

#[test]
fn retries_recover_moderate_downlink_loss() {
    let trace = lab_trace(2, 34);
    let (mut proxy, mut node, _) = paired(PushPolicy::ModelDriven { tolerance: 1.0 }, 0.0, 11);
    for r in &trace[..3000] {
        for msg in node.on_sample(r.timestamp, r.value, None) {
            proxy.on_uplink(&msg);
        }
    }
    // 20% loss: ARQ + pull retries should still get a PAST answer.
    let mut lossy = DownlinkChannel::over(LinkModel::new(LossProcess::Bernoulli(0.2), SimRng::new(12)));
    let t = trace[3000].timestamp;
    let a = proxy.answer_past(
        t,
        0,
        SimTime::from_hours(5),
        SimTime::from_hours(6),
        0.2,
        &mut node,
        &mut lossy,
    );
    assert_ne!(a.source, AnswerSource::Failed);
    assert!(!a.samples.is_empty());
}
