//! Deep-history behaviour: PAST queries that reach through the proxy
//! into mote archives, graceful aging under pressure, and the
//! lossy-reply precision contract.

use presto::archive::{ArchiveConfig, ArchiveStore, Quality};
use presto::net::LinkModel;
use presto::reliability::DownlinkChannel;
use presto::proxy::{AnswerSource, PrestoProxy, ProxyConfig};
use presto::sensor::{PushPolicy, SensorConfig, SensorNode};
use presto::sim::{EnergyLedger, SimDuration, SimTime};
use presto::workloads::{LabDeployment, LabParams};

fn lab_values(days: u64, seed: u64) -> Vec<(SimTime, f64)> {
    LabDeployment::single_sensor_trace(
        LabParams {
            events_per_day: 0.0,
            ..LabParams::default()
        },
        seed,
        SimDuration::from_days(days),
    )
    .into_iter()
    .map(|r| (r.timestamp, r.value))
    .collect()
}

#[test]
fn pull_reply_precision_tracks_query_tolerance() {
    let trace = lab_values(1, 41);
    let query_t = trace.last().expect("non-empty").0;

    // Fresh sensor/proxy per tolerance so every pull hits the same
    // (cold-cache) window and the byte counts are comparable.
    let run = |tolerance: f64| -> (u64, f64) {
        let mut node = SensorNode::new(
            0,
            SensorConfig {
                push: PushPolicy::Silent,
                ..SensorConfig::default()
            },
            LinkModel::perfect(),
        );
        for &(t, v) in &trace {
            node.on_sample(t, v, None);
        }
        let mut proxy = PrestoProxy::new(ProxyConfig::default());
        proxy.register_sensor(0);
        let mut link = DownlinkChannel::perfect();
        let before = node.stats().bytes_sent;
        let a = proxy.answer_past(
            query_t,
            0,
            SimTime::from_hours(8),
            SimTime::from_hours(10),
            tolerance,
            &mut node,
            &mut link,
        );
        assert_eq!(a.source, AnswerSource::Pulled);
        let mut worst: f64 = 0.0;
        for &(ts, v) in &a.samples {
            let idx = (ts.as_secs_f64() / 31.0).round() as usize;
            worst = worst.max((v - trace[idx].1).abs());
        }
        (node.stats().bytes_sent - before, worst)
    };

    let (bytes_fine, err_fine) = run(0.1);
    let (bytes_mid, err_mid) = run(0.5);
    let (bytes_coarse, err_coarse) = run(2.0);
    // Accuracy within each tolerance.
    assert!(err_fine <= 0.1 + 1e-6, "{err_fine}");
    assert!(err_mid <= 0.5 + 1e-6, "{err_mid}");
    assert!(err_coarse <= 2.0 + 1e-6, "{err_coarse}");
    // Coarser tolerance → fewer bytes on the wire. The effect is step
    //-function-like (varints cost one byte for any small coefficient),
    // so 0.1 and 0.5 may tie; the meaningful comparison is fine vs
    // coarse, where the quantizer actually zeroes the detail bands.
    assert!(
        bytes_mid <= bytes_fine * 11 / 10,
        "{bytes_mid} vs {bytes_fine}"
    );
    assert!(
        (bytes_coarse as f64) < bytes_fine as f64 * 0.8,
        "{bytes_coarse} vs {bytes_fine}"
    );
}

#[test]
fn constrained_archive_ages_instead_of_forgetting() {
    let trace = lab_values(8, 42);
    let mut store = ArchiveStore::new(ArchiveConfig {
        capacity_bytes: 32 * 1024,
        ..ArchiveConfig::default()
    });
    let mut ledger = EnergyLedger::new();
    for &(t, v) in &trace {
        store.append_scalar(t, v, &mut ledger).expect("append");
    }
    assert!(
        store.stats().segments_reclaimed > 0,
        "no pressure exercised"
    );

    // Recent day: exact. First day: aged but still present and sane.
    let last_t = trace.last().expect("non-empty").0;
    let recent = store
        .query_range(last_t - SimDuration::from_hours(2), last_t, &mut ledger)
        .expect("query");
    assert!(recent.iter().all(|s| s.quality == Quality::Exact));
    assert!(recent.len() > 200);

    let old = store
        .query_range(SimTime::ZERO, SimTime::from_hours(12), &mut ledger)
        .expect("query");
    assert!(!old.is_empty(), "first day vanished");
    assert!(old.iter().any(|s| matches!(s.quality, Quality::Aged(_))));
    for s in &old {
        let idx = (s.timestamp.as_secs_f64() / 31.0).round() as usize;
        let truth = trace[idx.min(trace.len() - 1)].1;
        assert!(
            (s.value - truth).abs() < 8.0,
            "aged value wildly off: {} vs {truth}",
            s.value
        );
    }
}

#[test]
fn proxy_extrapolated_past_answers_respect_the_guarantee() {
    let trace = lab_values(3, 43);
    let mut node = SensorNode::new(
        0,
        SensorConfig {
            push: PushPolicy::ModelDriven { tolerance: 1.0 },
            ..SensorConfig::default()
        },
        LinkModel::perfect(),
    );
    let mut proxy = PrestoProxy::new(ProxyConfig {
        push_tolerance: 1.0,
        ..ProxyConfig::default()
    });
    proxy.register_sensor(0);
    let mut link = DownlinkChannel::perfect();
    for (i, &(t, v)) in trace.iter().enumerate() {
        for msg in node.on_sample(t, v, None) {
            proxy.on_uplink(&msg);
        }
        if i % 240 == 0 {
            proxy.maybe_train_and_push(t, 0, &mut node, &mut link);
        }
    }
    let query_t = trace.last().expect("non-empty").0;
    let a = proxy.answer_past(
        query_t,
        0,
        SimTime::from_hours(60),
        SimTime::from_hours(61),
        1.5,
        &mut node,
        &mut link,
    );
    assert_eq!(a.source, AnswerSource::Extrapolated);
    let mut worst: f64 = 0.0;
    for &(ts, v) in &a.samples {
        let idx = (ts.as_secs_f64() / 31.0).round() as usize;
        worst = worst.max((v - trace[idx].1).abs());
    }
    // Anchored extrapolation holds within a small multiple of the push
    // tolerance: the guarantee bounds the *sensor replica's* trajectory,
    // and the proxy's anchored reconstruction re-creates it up to the
    // AR-context mismatch at the anchor.
    assert!(worst <= 3.5, "worst extrapolation error {worst}");
}
