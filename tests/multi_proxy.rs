//! Multi-proxy data abstraction: skip-graph routing, clock-drift
//! correction across proxies, overlapping-coverage consistency, and
//! wired-side replication.

use presto::core::{PrestoSystem, SystemConfig};
use presto::index::consistency::EntryQuality;
use presto::index::{
    ClockCorrector, ConsistencyManager, DriftClock, ReplicaEntry, Replicator, SkipGraph,
    UnifiedView,
};
use presto::sim::{SimDuration, SimTime};

#[test]
fn routing_reaches_the_owning_proxy_for_every_sensor() {
    let sys = PrestoSystem::new(SystemConfig {
        proxies: 8,
        sensors_per_proxy: 5,
        ..SystemConfig::default()
    });
    for gid in 0..40u16 {
        let (expected, _) = sys.locate(gid);
        let (routed, hops) = sys.route(gid);
        assert_eq!(routed, expected, "sensor {gid}");
        assert!(hops <= 10, "sensor {gid}: {hops} hops for 8 proxies");
    }
}

#[test]
fn index_scales_sublinearly_in_proxies() {
    let mean_hops = |n: u64| {
        let mut g: SkipGraph<u64> = SkipGraph::new(1);
        for k in 0..n {
            g.insert(k);
        }
        let intro = g.introducer().expect("non-empty");
        let total: u64 = (0..n)
            .step_by((n / 16).max(1) as usize)
            .map(|t| g.search(intro, t).1.hops)
            .sum();
        total as f64 / 16.0
    };
    let h16 = mean_hops(16);
    let h256 = mean_hops(256);
    assert!(h256 < h16 * 6.0, "16: {h16}, 256: {h256}");
}

#[test]
fn cross_proxy_event_order_survives_clock_drift() {
    // Proxy B's sensors run 20 s fast; events alternate between proxies
    // every 30 s, so raw timestamps shuffle the order.
    let fast = DriftClock {
        offset_s: 20.0,
        skew_ppm: 30.0,
    };
    let mut corrector = ClockCorrector::new();
    for h in 0..6u64 {
        let t = SimTime::from_hours(h);
        corrector.observe_beacon(fast.local_time(t), t);
    }
    let trusted = ClockCorrector::new();

    let mut view: UnifiedView<u32> = UnifiedView::new();
    let a_stream: Vec<(SimTime, u32)> = (0..50)
        .map(|k| (SimTime::from_secs(60 * k), 2 * k as u32))
        .collect();
    let b_stream: Vec<(SimTime, u32)> = (0..50)
        .map(|k| {
            (
                fast.local_time(SimTime::from_secs(60 * k + 30)),
                2 * k as u32 + 1,
            )
        })
        .collect();
    view.add_stream(0, &trusted, a_stream);
    view.add_stream(1, &corrector, b_stream);
    let order: Vec<u32> = view.ordered().iter().map(|i| i.item).collect();
    let expected: Vec<u32> = (0..100).collect();
    assert_eq!(order, expected, "corrected merge must restore true order");
}

#[test]
fn overlapping_proxies_reconcile_deterministically() {
    let mut m = ConsistencyManager::new();
    let t = SimTime::from_secs(100);
    // Both proxies cover sensor 7; proxy 1 has pulled exact data.
    m.integrate(ReplicaEntry {
        proxy: 0,
        sensor: 7,
        t,
        value: 20.5,
        quality: EntryQuality::Lossy,
        version: 9,
    });
    m.integrate(ReplicaEntry {
        proxy: 1,
        sensor: 7,
        t,
        value: 20.1,
        quality: EntryQuality::Exact,
        version: 2,
    });
    let winner = m.get(7, t).expect("cell exists");
    assert_eq!(winner.proxy, 1);
    assert_eq!(winner.value, 20.1);
    assert_eq!(m.conflicts_resolved, 1);
}

#[test]
fn wireless_cache_replicates_to_wired_proxy() {
    // An 802.11 backhaul at 2 Mbps, shipping every 5 minutes.
    let mut rep = Replicator::new(2e6, SimDuration::from_mins(5));
    for k in 0..600u64 {
        rep.enqueue(ReplicaEntry {
            proxy: 3,
            sensor: 1,
            t: SimTime::from_secs(k),
            value: 21.0,
            quality: EntryQuality::Lossy,
            version: k,
        });
    }
    let latency = rep.tick(SimTime::from_mins(5)).expect("period elapsed");
    assert!(latency < SimDuration::from_secs(1), "transfer {latency}");
    assert_eq!(rep.mirror().len(), 600);
    assert!(rep.mean_staleness() <= SimDuration::from_mins(5));
}
