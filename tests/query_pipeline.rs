//! Pipeline-equivalence property: for ANY seeded multi-query workload
//! and ANY downlink loss trace — including 100% bursts — every answer
//! the asynchronous query pipeline completes is **value-identical** to
//! what the synchronous `PrestoProxy` reference path produces on the
//! same state, and every other query terminates honestly
//! (`AnswerSource::Failed`, sigma = ∞ for scalars) by its deadline.
//! No hangs, no silent drops, no leaked pending entries: overlap and
//! coalescing may only change *when* an answer arrives, never *what*
//! it says.

use proptest::prelude::*;

use presto::proxy::{
    AnswerSource, PipelineAnswer, PipelineQuery, PrestoProxy, ProxyConfig,
};
use presto::reliability::{DownlinkChannel, DownlinkConfig};
use presto::net::{LinkModel, LossProcess};
use presto::sensor::{AggregateOp, PushPolicy, SensorConfig, SensorNode};
use presto::sim::{SimDuration, SimTime};

const EPOCH: SimDuration = SimDuration::from_secs(31);

fn diurnal(t: SimTime) -> f64 {
    21.0 + 4.0 * ((t.hour_of_day() - 14.0) / 24.0 * std::f64::consts::TAU).cos()
}

/// A sensor with one day of archived samples, never pushing. Both the
/// pipeline run and the reference run build identical copies.
fn archived_node() -> SensorNode {
    let mut n = SensorNode::new(
        0,
        SensorConfig {
            push: PushPolicy::Silent,
            ..SensorConfig::default()
        },
        LinkModel::perfect(),
    );
    for i in 0..(86_400 / 31) {
        let t = SimTime::from_secs(31 * i);
        n.on_sample(t, diurnal(t), None);
    }
    n
}

/// A proxy whose radio-free fast paths cannot fire (empty cache at
/// phase start, no model, impossible coverage threshold), so every
/// query exercises the pull path — the path the pipeline reworks.
fn proxy() -> PrestoProxy {
    let mut p = PrestoProxy::new(ProxyConfig {
        past_coverage_hit: f64::INFINITY,
        ..ProxyConfig::default()
    });
    p.register_sensor(0);
    p
}

fn scripted_channel(request: Vec<bool>, reply: Vec<bool>) -> DownlinkChannel {
    DownlinkChannel::new(
        DownlinkConfig {
            request_loss: LossProcess::Scripted(request.into()),
            reply_loss: LossProcess::Scripted(reply.into()),
            ..DownlinkConfig::default()
        },
        LinkModel::perfect(),
    )
}

/// Disjoint one-hour windows inside the archived day.
fn window(k: u64) -> (SimTime, SimTime) {
    (
        SimTime::from_hours(2 * k + 1),
        SimTime::from_hours(2 * k + 2),
    )
}

/// Workload atom: (submit epoch, query). Codes 0..6 are PAST windows,
/// 6..8 aggregates, 8..10 NOW.
fn decode(code: u8) -> PipelineQuery {
    match code % 10 {
        k @ 0..=5 => {
            let (from, to) = window(k as u64);
            PipelineQuery::Past {
                sensor: 0,
                from,
                to,
                tolerance: 0.2,
            }
        }
        k @ 6..=7 => {
            let (from, to) = window((k - 6) as u64);
            PipelineQuery::Aggregate {
                sensor: 0,
                from,
                to,
                op: AggregateOp::Mean,
            }
        }
        _ => PipelineQuery::Now {
            sensor: 0,
            tolerance: 0.2,
        },
    }
}

/// The synchronous reference: a persistent, identically built
/// (proxy, sensor, perfect channel) trio serving each query through
/// `PrestoProxy`'s blocking path at the same submission instant. The
/// trio stays alive across queries so the channel's sequence numbers
/// keep advancing (a fresh channel per query would collide with the
/// sensor's dedup window); its fast paths are disabled exactly like the
/// pipeline proxy's, so every reference answer is a real pull.
fn reference_answer(
    q: PipelineQuery,
    t: SimTime,
    p: &mut PrestoProxy,
    chan: &mut DownlinkChannel,
    ref_node: &mut SensorNode,
) -> PipelineAnswer {
    match q {
        PipelineQuery::Now { sensor, tolerance } => {
            PipelineAnswer::Scalar(p.answer_now(t, sensor, tolerance, ref_node, chan))
        }
        PipelineQuery::Past {
            sensor,
            from,
            to,
            tolerance,
        } => PipelineAnswer::Series(p.answer_past(t, sensor, from, to, tolerance, ref_node, chan)),
        PipelineQuery::Aggregate {
            sensor,
            from,
            to,
            op,
        } => PipelineAnswer::Scalar(p.answer_aggregate(t, sensor, from, to, op, ref_node, chan)),
    }
}

/// Runs the pipeline over the workload under the given loss traces and
/// checks every completion against the reference. Returns
/// (completed-pulled, honestly-failed).
fn run_and_check(
    workload: &[(u8, u8)],
    request: Vec<bool>,
    reply: Vec<bool>,
) -> (usize, usize) {
    let base = SimTime::from_days(2);
    let mut p = proxy();
    let mut node = archived_node();
    let mut chan = scripted_channel(request, reply);
    let mut ref_node = archived_node();
    let mut ref_proxy = proxy();
    let mut ref_chan = DownlinkChannel::perfect();

    // Submission schedule: epoch → queries.
    let horizon: u64 = 24;
    let deadline = p.config().pipeline.deadline;
    let drain = deadline.div_duration(EPOCH) + 2;
    let mut expectations = std::collections::HashMap::new();
    let mut submitted = 0usize;
    for e in 0..horizon + drain {
        let t = base + EPOCH * e;
        if e < horizon {
            for &(ep, code) in workload.iter().filter(|&&(ep, _)| ep as u64 % horizon == e) {
                let _ = ep;
                let q = decode(code);
                let ticket = p.submit_query(t, q);
                expectations.insert(ticket, (q, t));
                submitted += 1;
            }
        }
        p.pump_queries(t, 0, std::slice::from_mut(&mut node), std::slice::from_mut(&mut chan));
    }

    let done = p.take_completed_queries();
    prop_assert_eq!(done.len(), submitted, "every query must terminate — no hangs, no drops");
    // Bookkeeping invariants: nothing pending, nothing leaked in the
    // pending-RPC table.
    prop_assert_eq!(p.pipeline().pending_queries(), 0);
    prop_assert_eq!(chan.async_in_flight(), 0);
    prop_assert_eq!(chan.outstanding_rpcs(), 0);

    let mut pulled = 0usize;
    let mut failed = 0usize;
    for c in done {
        let (q, t_sub) = expectations.remove(&c.id).expect("unknown ticket");
        prop_assert!(
            c.completed_at <= t_sub + deadline + EPOCH,
            "query completed after its deadline: {:?} vs {:?}",
            c.completed_at,
            t_sub + deadline
        );
        match c.answer.source() {
            AnswerSource::Failed => {
                failed += 1;
                if let PipelineAnswer::Scalar(a) = &c.answer {
                    prop_assert!(a.sigma.is_infinite(), "failed scalar must advertise sigma ∞");
                }
            }
            AnswerSource::Pulled => {
                pulled += 1;
                let reference =
                    reference_answer(q, t_sub, &mut ref_proxy, &mut ref_chan, &mut ref_node);
                match (&c.answer, &reference) {
                    (PipelineAnswer::Series(a), PipelineAnswer::Series(r)) => {
                        prop_assert_eq!(r.source, AnswerSource::Pulled, "reference must pull");
                        prop_assert_eq!(
                            &a.samples, &r.samples,
                            "pipeline pulled different data than the reference"
                        );
                    }
                    (PipelineAnswer::Scalar(a), PipelineAnswer::Scalar(r)) => {
                        prop_assert_eq!(r.source, AnswerSource::Pulled, "reference must pull");
                        prop_assert_eq!(a.value, r.value, "scalar value diverged");
                        prop_assert_eq!(a.sigma, r.sigma, "scalar sigma diverged");
                    }
                    _ => prop_assert!(false, "answer shape diverged from reference"),
                }
            }
            other => prop_assert!(
                false,
                "pipeline produced {:?} — pull-path queries complete Pulled or Failed only",
                other
            ),
        }
    }
    (pulled, failed)
}

/// Runs the workload through a trace-enabled pipeline and checks the
/// span log is complete: one finished trace per submitted query, each
/// starting `Submitted` with exactly one terminal whose cause matches
/// the answer's honesty, timestamps monotone, and no open (orphaned)
/// tickets left in the tracer after the drain window.
fn run_traced(workload: &[(u8, u8)], request: Vec<bool>, reply: Vec<bool>) {
    use presto::telemetry::{CompletionCause, SpanEvent};

    let base = SimTime::from_days(2);
    let mut cfg = ProxyConfig {
        past_coverage_hit: f64::INFINITY,
        ..ProxyConfig::default()
    };
    cfg.pipeline.trace = true;
    let mut p = PrestoProxy::new(cfg);
    p.register_sensor(0);
    let mut node = archived_node();
    let mut chan = scripted_channel(request, reply);

    let horizon: u64 = 24;
    let deadline = p.config().pipeline.deadline;
    let drain = deadline.div_duration(EPOCH) + 2;
    let mut submitted = 0usize;
    for e in 0..horizon + drain {
        let t = base + EPOCH * e;
        if e < horizon {
            for &(_, code) in workload.iter().filter(|&&(ep, _)| ep as u64 % horizon == e) {
                p.submit_query(t, decode(code));
                submitted += 1;
            }
        }
        p.pump_queries(t, 0, std::slice::from_mut(&mut node), std::slice::from_mut(&mut chan));
    }

    let done = p.take_completed_queries();
    prop_assert_eq!(done.len(), submitted);
    let failed_ids: std::collections::HashSet<u64> = done
        .iter()
        .filter(|c| c.answer.source() == AnswerSource::Failed)
        .map(|c| c.id)
        .collect();

    let traces = p.pipeline_mut().tracer_mut().take_finished();
    prop_assert_eq!(
        traces.len(),
        submitted,
        "every query must leave exactly one finished trace"
    );
    prop_assert_eq!(p.pipeline().tracer().finished_dropped(), 0);
    let mut seen = std::collections::HashSet::new();
    for tr in &traces {
        prop_assert!(seen.insert(tr.ticket), "duplicate trace for ticket {}", tr.ticket);
        prop_assert_eq!(
            tr.events.first().map(|e| &e.event),
            Some(&SpanEvent::Submitted),
            "trace must open with Submitted"
        );
        prop_assert_eq!(tr.terminal_count(), 1, "exactly one terminal per trace");
        prop_assert!(tr.is_monotone(), "span timestamps must be monotone");
        let want = if failed_ids.contains(&tr.ticket) {
            CompletionCause::Failed
        } else {
            CompletionCause::Ok
        };
        prop_assert_eq!(tr.cause(), Some(want), "terminal cause must match the answer");
        // Age coverage is exactly the Ok set: an Ok terminal reflects
        // real data and must carry its staleness; a failed terminal
        // reflects nothing and must not pretend otherwise.
        prop_assert_eq!(
            tr.answer_age().is_some(),
            want == CompletionCause::Ok,
            "answer age must be present iff the completion is Ok (ticket {})",
            tr.ticket
        );
    }
    prop_assert_eq!(
        p.pipeline().tracer().open_count(),
        0,
        "no orphaned open traces after the drain window"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16 })]

    /// Any workload × any loss trace: completed answers are
    /// value-identical to the synchronous reference; the rest fail
    /// honestly by their deadline.
    #[test]
    fn pipeline_matches_reference_or_fails_honestly(
        workload in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..32),
        request in proptest::collection::vec(any::<bool>(), 1..64),
        reply in proptest::collection::vec(any::<bool>(), 1..64),
    ) {
        run_and_check(&workload, request, reply);
    }

    /// Any workload × any loss trace, tracer on: the span log accounts
    /// for every query — exactly one terminal each, monotone
    /// timestamps, zero orphans after drain.
    #[test]
    fn pipeline_traces_are_complete(
        workload in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..32),
        request in proptest::collection::vec(any::<bool>(), 1..64),
        reply in proptest::collection::vec(any::<bool>(), 1..64),
    ) {
        run_traced(&workload, request, reply);
    }

    /// A 100% request-loss burst: nothing completes, everything fails
    /// honestly by its deadline, nothing leaks.
    #[test]
    fn pipeline_total_burst_fails_everything_honestly(
        workload in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..24),
    ) {
        let (pulled, failed) = run_and_check(&workload, vec![false], vec![true]);
        prop_assert_eq!(pulled, 0, "nothing can complete through a dead channel");
        prop_assert_eq!(failed, workload.len());
    }

    /// A lossless channel: everything completes and matches the
    /// reference; nothing fails.
    #[test]
    fn pipeline_lossless_completes_everything(
        workload in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..24),
    ) {
        let (pulled, failed) = run_and_check(&workload, vec![true], vec![true]);
        // Every query completes: PAST and aggregate windows are inside
        // the archived day, and NOW pulls return the freshest archived
        // samples (the sensor serves the nearest span it has).
        prop_assert_eq!(pulled, workload.len());
        prop_assert_eq!(failed, 0);
    }
}

/// NOW queries inside the archived span complete through the pipeline
/// with the exact reference value (the freshest archived sample).
#[test]
fn pipeline_now_query_matches_reference_inside_archive() {
    let t = SimTime::from_secs(86_000);
    let mut p = proxy();
    let mut node = archived_node();
    let mut chan = DownlinkChannel::perfect();
    let ticket = p.submit_query(
        t,
        PipelineQuery::Now {
            sensor: 0,
            tolerance: 0.2,
        },
    );
    p.pump_queries(t, 0, std::slice::from_mut(&mut node), std::slice::from_mut(&mut chan));
    let done = p.take_completed_queries();
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].id, ticket);
    let mut ref_node = archived_node();
    let mut ref_proxy = proxy();
    let mut ref_chan = DownlinkChannel::perfect();
    let reference = reference_answer(
        PipelineQuery::Now {
            sensor: 0,
            tolerance: 0.2,
        },
        t,
        &mut ref_proxy,
        &mut ref_chan,
        &mut ref_node,
    );
    match (&done[0].answer, &reference) {
        (PipelineAnswer::Scalar(a), PipelineAnswer::Scalar(r)) => {
            assert_eq!(r.source, AnswerSource::Pulled);
            assert_eq!(a.source, AnswerSource::Pulled);
            assert_eq!(a.value, r.value);
            assert_eq!(a.sigma, r.sigma);
        }
        _ => panic!("NOW answers are scalars"),
    }
}
