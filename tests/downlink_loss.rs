//! Downlink-loss property: for ANY loss trace on the proxy→sensor
//! request path and the reply path — including 100% bursts — a
//! fabric-routed pull either returns exactly what the lossless
//! reference returns, or fails *honestly* (`AnswerSource::Failed`,
//! sigma = ∞ for scalar answers). There is no third outcome: loss can
//! cost latency or the answer, never silent wrongness.

use proptest::prelude::*;

use presto::net::{LinkModel, LossProcess};
use presto::proxy::{AnswerSource, PastAnswer, PrestoProxy, ProxyConfig};
use presto::reliability::{DownlinkChannel, DownlinkConfig};
use presto::sensor::{PushPolicy, SensorConfig, SensorNode};
use presto::sim::{SimDuration, SimTime};

fn diurnal(t: SimTime) -> f64 {
    21.0 + 4.0 * ((t.hour_of_day() - 14.0) / 24.0 * std::f64::consts::TAU).cos()
}

/// A sensor with one day of archived samples, never pushing.
fn archived_node() -> SensorNode {
    let mut n = SensorNode::new(
        0,
        SensorConfig {
            push: PushPolicy::Silent,
            ..SensorConfig::default()
        },
        LinkModel::perfect(),
    );
    for i in 0..(86_400 / 31) {
        let t = SimTime::from_secs(31 * i);
        n.on_sample(t, diurnal(t), None);
    }
    n
}

fn proxy() -> PrestoProxy {
    let mut p = PrestoProxy::new(ProxyConfig::default());
    p.register_sensor(0);
    p
}

fn scripted_channel(request: Vec<bool>, reply: Vec<bool>) -> DownlinkChannel {
    DownlinkChannel::new(
        DownlinkConfig {
            request_loss: LossProcess::Scripted(request.into()),
            reply_loss: LossProcess::Scripted(reply.into()),
            ..DownlinkConfig::default()
        },
        LinkModel::perfect(),
    )
}

/// Disjoint one-hour query windows inside the archived day.
fn window(k: u64) -> (SimTime, SimTime) {
    (
        SimTime::from_hours(2 * k + 1),
        SimTime::from_hours(2 * k + 2),
    )
}

fn run_windows(chan: &mut DownlinkChannel) -> Vec<PastAnswer> {
    let mut p = proxy();
    let mut node = archived_node();
    let t = SimTime::from_days(2);
    (0..4u64)
        .map(|k| {
            let (from, to) = window(k);
            p.answer_past(t, 0, from, to, 0.2, &mut node, chan)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    /// Any request/reply loss trace: every pulled answer equals the
    /// lossless reference sample-for-sample; everything else is an
    /// honest failure.
    #[test]
    fn pulls_match_reference_or_fail_honestly(
        request in proptest::collection::vec(any::<bool>(), 1..48),
        reply in proptest::collection::vec(any::<bool>(), 1..48),
    ) {
        let reference = run_windows(&mut DownlinkChannel::perfect());
        let mut chan = scripted_channel(request, reply);
        let lossy = run_windows(&mut chan);
        for (k, (a, r)) in lossy.iter().zip(&reference).enumerate() {
            prop_assert_eq!(r.source, AnswerSource::Pulled, "reference must pull");
            match a.source {
                AnswerSource::Pulled => {
                    prop_assert_eq!(
                        &a.samples, &r.samples,
                        "window {} pulled different data than the reference", k
                    );
                }
                AnswerSource::Failed => {
                    // Honest: the failure is visible, and the RPC's
                    // timeouts surfaced in latency.
                    prop_assert!(a.latency >= SimDuration::from_secs(5));
                }
                other => prop_assert!(
                    false,
                    "window {} produced {:?} — neither reference-equal nor honest failure",
                    k, other
                ),
            }
        }
    }
}

/// The degenerate trace: a 100%-loss burst on the request path. Every
/// pull fails, the failures are booked, scalar answers advertise no
/// confidence, and the retry timeouts appear in latency.
#[test]
fn total_downlink_burst_fails_honestly_not_silently() {
    let mut chan = scripted_channel(vec![false], vec![true]);
    let mut p = proxy();
    let mut node = archived_node();
    let t = SimTime::from_days(2);

    let past = p.answer_past(
        t,
        0,
        SimTime::from_hours(3),
        SimTime::from_hours(4),
        0.2,
        &mut node,
        &mut chan,
    );
    assert_eq!(past.source, AnswerSource::Failed);

    let now = p.answer_now(t, 0, 0.5, &mut node, &mut chan);
    assert_eq!(now.source, AnswerSource::Failed);
    assert!(
        now.sigma.is_infinite(),
        "a failed NOW answer must advertise sigma = ∞, got {}",
        now.sigma
    );
    // Each failed RPC waited out every retransmission.
    assert!(now.latency >= SimDuration::from_secs(15), "{:?}", now.latency);
    assert_eq!(p.stats().pull_failures, 2);
    assert_eq!(chan.stats().rpc_failures, 2);
    assert!(chan.stats().retransmits >= 4);
    // The sensor never heard a thing.
    assert_eq!(node.stats().pulls_served, 0);
}

/// The symmetric degenerate trace: requests arrive, every reply dies.
/// The sensor serves from flash once, answers duplicates from its reply
/// cache, and the proxy still fails honestly.
#[test]
fn total_reply_burst_fails_honestly_after_deduped_retries() {
    let mut chan = scripted_channel(vec![true], vec![false]);
    let mut p = proxy();
    let mut node = archived_node();
    let t = SimTime::from_days(2);

    let past = p.answer_past(
        t,
        0,
        SimTime::from_hours(5),
        SimTime::from_hours(6),
        0.2,
        &mut node,
        &mut chan,
    );
    assert_eq!(past.source, AnswerSource::Failed);
    assert_eq!(
        node.stats().pulls_served,
        1,
        "retransmitted requests must be answered from the reply cache"
    );
    assert_eq!(node.stats().duplicate_requests, 2);
    assert_eq!(chan.stats().replies_lost, 3);
}
