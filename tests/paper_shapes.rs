//! Regression checks on the *shape* of every paper artifact: quick-size
//! runs of the Figure 2 sweep and the Table 1 comparison must preserve
//! the qualitative relationships the paper reports.

use presto_bench::figure2::{check_shape as figure2_shape, generate as figure2, Figure2Config};
use presto_bench::table1::{check_shape as table1_shape, generate as table1};

#[test]
fn figure2_shape_holds_on_a_week() {
    let data = figure2(&Figure2Config {
        days: 7,
        ..Figure2Config::default()
    });
    figure2_shape(&data).unwrap();
    // Magnitudes live in the paper's 0–3000 J range when scaled to the
    // full 36-day trace (7 days ≈ 1/5 of it).
    let v1 = data.rows[0].value_delta1_j * 36.0 / 7.0;
    assert!(
        (300.0..3000.0).contains(&v1),
        "delta=1 out of the paper's range: {v1} J"
    );
}

#[test]
fn figure2_batching_amortizes_by_an_order_of_magnitude() {
    let data = figure2(&Figure2Config {
        days: 7,
        ..Figure2Config::default()
    });
    let first = &data.rows[0];
    let last = data.rows.last().expect("rows");
    assert!(
        first.batched_raw_j / last.batched_raw_j > 5.0,
        "batched raw {} -> {}",
        first.batched_raw_j,
        last.batched_raw_j
    );
    assert!(
        first.batched_wavelet_j / last.batched_wavelet_j > 20.0,
        "batched wavelet {} -> {}",
        first.batched_wavelet_j,
        last.batched_wavelet_j
    );
}

#[test]
fn table1_shape_holds() {
    let cfg = presto_baselines::DriverConfig {
        sensors: 3,
        days: 2,
        ..presto_baselines::DriverConfig::default()
    };
    let reports = table1(&cfg);
    table1_shape(&reports).unwrap();
}

#[test]
fn e_experiments_run_at_reduced_scale() {
    // Smoke-run every extension experiment at small scale; their own
    // units assert the detailed claims.
    let e1 = presto_bench::experiments::e1_rare_events(2, 1);
    assert!(!e1.arms.is_empty());
    let e5 = presto_bench::experiments::e5_skipgraph(2);
    assert_eq!(e5.len(), 8);
    let e7 = presto_bench::experiments::e7_asymmetry(3);
    assert_eq!(e7.len(), 5);
    let e8 = presto_bench::experiments::e8_clock(4);
    assert_eq!(e8.len(), 4);
}
