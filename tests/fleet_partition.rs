//! Partition-tolerance property: for ANY split-brain schedule (one
//! proxy cut off from the mesh mid-phase, downlinks untouched, healed
//! later) × ANY downlink loss trace × ANY workload — the fleet never
//! lets two proxies drive a sensor's home uplink in the same epoch,
//! never lets a fenced or quorum-declared-dead proxy drive radio at
//! all, completes only answers value-identical to the single-proxy
//! blocking reference (everything else fails honestly, sigma ∞, by
//! deadline plus grace), stamps every real answer with an explicit
//! `answer_age`, and leaks nothing once traffic drains.
//!
//! The split-brain is the scenario quorum membership exists for: the
//! minority proxy is *up* and its sensors keep uplinking to it, so a
//! naive fleet would happily serve from both sides of the cut. The
//! fence must close (minority stops accepting queries, stops pumping)
//! strictly before the majority re-homes its sensors, and the heal
//! must re-sync the rejoining proxy through the archive rather than
//! trusting its aged caches.

use std::collections::HashMap;

use proptest::prelude::*;

use presto::core::SystemConfig;
use presto::fleet::{FleetConfig, FleetDeployment};
use presto::net::{GilbertElliott, LossProcess};
use presto::proxy::{AnswerSource, PipelineAnswer, PipelineQuery, PrestoProxy, ProxyConfig};
use presto::reliability::DownlinkChannel;
use presto::sensor::AggregateOp;
use presto::sim::{FaultPlan, SimDuration, SimTime};
use presto::workloads::{LabDeployment, LabParams};

const EPOCH: SimDuration = SimDuration::from_secs(31);
const PROXIES: usize = 3;
const SPP: usize = 2;
const WARMUP_EPOCHS: u64 = 12 * 3600 / 31; // 12 h
const PHASE_EPOCHS: u64 = 24;
// Long enough for the longest partition window to heal, the rejoin to
// re-sync, and the last deadline + grace to expire.
const DRAIN_EPOCHS: u64 = 96;

fn quiet_lab() -> LabParams {
    LabParams {
        sensors: SPP,
        jitter_sigma: 0.0,
        heavy_prob: 0.0,
        field_sigma: 0.0,
        events_per_day: 0.0,
        ..LabParams::default()
    }
}

fn fleet(seed: u64, faults: FaultPlan, dl_req: Vec<bool>, dl_rep: Vec<bool>) -> FleetDeployment {
    let mut sys = SystemConfig {
        proxies: PROXIES,
        sensors_per_proxy: SPP,
        seed,
        lab: quiet_lab(),
        loss: 0.0,
        // Radio-free fast paths off: every real answer is an archive
        // pull, so value-identity with the reference is exact.
        push_tolerance: 1e6,
        clock_skew_ppm: 0.0,
        proxy: ProxyConfig {
            past_coverage_hit: f64::INFINITY,
            ..ProxyConfig::default()
        },
        faults,
        ..SystemConfig::default()
    };
    sys.reliability.downlink.request_loss = LossProcess::Scripted(dl_req.into());
    sys.reliability.downlink.reply_loss = LossProcess::Scripted(dl_rep.into());
    let mut fc = FleetConfig {
        system: sys,
        ..FleetConfig::default()
    };
    fc.router.shed_threshold = 4.0;
    fc.router.shed_margin = 1.0;
    // Clean mesh links: the only mesh failures in this property are the
    // injected partition cuts, so every honest failure is attributable
    // to the split brain itself.
    fc.interlink.link_chain = GilbertElliott {
        p_gb: 0.0,
        p_bg: 1.0,
        loss_good: 0.0,
        loss_bad: 1.0,
    };
    fc.interlink.shared_chain = None;
    FleetDeployment::new(fc)
}

fn decode(code: u8) -> (PipelineQuery, f64) {
    let sensor = ((code as usize) / 8) % (PROXIES * SPP);
    let k = (code % 8) as u64;
    let from = SimTime::from_hours(2) + SimDuration::from_mins(45) * k;
    let to = from + SimDuration::from_mins(30);
    if code.is_multiple_of(5) {
        (
            PipelineQuery::Aggregate {
                sensor: sensor as u16,
                from,
                to,
                op: AggregateOp::Mean,
            },
            0.05,
        )
    } else {
        (
            PipelineQuery::Past {
                sensor: sensor as u16,
                from,
                to,
                tolerance: 0.05,
            },
            0.05,
        )
    }
}

/// Blocking single-proxy reference over the replayed archive (the
/// zero-noise lab is a pure function of the seed).
struct Reference {
    proxy: PrestoProxy,
    nodes: Vec<presto::sensor::SensorNode>,
    chans: Vec<DownlinkChannel>,
}

impl Reference {
    fn build(seed: u64, epochs: u64) -> Reference {
        let mut proxy = PrestoProxy::new(ProxyConfig {
            past_coverage_hit: f64::INFINITY,
            push_tolerance: 1e6,
            ..ProxyConfig::default()
        });
        let mut nodes: Vec<presto::sensor::SensorNode> = (0..PROXIES * SPP)
            .map(|gid| {
                proxy.register_sensor(gid as u16);
                presto::sensor::SensorNode::new(
                    gid as u16,
                    presto::sensor::SensorConfig {
                        push: presto::sensor::PushPolicy::Silent,
                        ..presto::sensor::SensorConfig::default()
                    },
                    presto::net::LinkModel::perfect(),
                )
            })
            .collect();
        for p in 0..PROXIES {
            let mut lab = LabDeployment::new(quiet_lab(), seed.wrapping_add(p as u64 * 101));
            for _ in 0..epochs {
                for (s, r) in lab.step().iter().enumerate() {
                    nodes[p * SPP + s].on_sample(r.timestamp, r.value, None);
                }
            }
        }
        let chans = (0..PROXIES * SPP).map(|_| DownlinkChannel::perfect()).collect();
        Reference {
            proxy,
            nodes,
            chans,
        }
    }

    fn answer(&mut self, q: PipelineQuery, t: SimTime) -> PipelineAnswer {
        let gid = q.sensor() as usize;
        match q {
            PipelineQuery::Past {
                sensor,
                from,
                to,
                tolerance,
            } => PipelineAnswer::Series(self.proxy.answer_past(
                t,
                sensor,
                from,
                to,
                tolerance,
                &mut self.nodes[gid],
                &mut self.chans[gid],
            )),
            PipelineQuery::Aggregate {
                sensor,
                from,
                to,
                op,
            } => PipelineAnswer::Scalar(self.proxy.answer_aggregate(
                t,
                sensor,
                from,
                to,
                op,
                &mut self.nodes[gid],
                &mut self.chans[gid],
            )),
            PipelineQuery::Now { .. } => unreachable!("workload emits range queries only"),
        }
    }
}

/// Checks the per-epoch uplink-ownership audit trail: at most one home
/// driver per sensor, always the current owner, and never a fenced or
/// declared-dead proxy.
fn check_pump_log(fleet: &FleetDeployment, epoch: u64) {
    let assignment = fleet.system.assignment().to_vec();
    let mut home_driver: HashMap<u16, usize> = HashMap::new();
    for &(p, gid, via_foreign) in fleet.pump_log() {
        prop_assert!(
            !fleet.is_fenced(p),
            "fenced proxy {p} drove radio toward sensor {gid} at epoch {epoch}"
        );
        prop_assert!(
            !fleet.membership().is_declared_dead(p),
            "declared-dead proxy {p} drove radio toward sensor {gid} at epoch {epoch}"
        );
        if !via_foreign {
            prop_assert_eq!(
                assignment[gid as usize],
                p,
                "home uplink driven by non-owner at epoch {}",
                epoch
            );
            let prev = home_driver.insert(gid, p);
            prop_assert!(
                prev.is_none(),
                "sensor {gid}'s home uplink driven by two proxies in epoch {epoch}"
            );
        }
    }
}

fn run_split_brain(
    workload: &[(u8, u8, u8)],
    dl_req: Vec<bool>,
    dl_rep: Vec<bool>,
    minority: usize,
    cut_start_epoch: u64,
    cut_epochs: u64,
) -> (usize, usize) {
    let seed = 0x5B1A ^ workload.len() as u64;
    let from = SimTime::ZERO + EPOCH * (WARMUP_EPOCHS + cut_start_epoch);
    let to = from + EPOCH * cut_epochs;
    let faults = FaultPlan::none().with_mesh_partition(vec![minority], from, to);
    let mut fleet = fleet(seed, faults, dl_req, dl_rep);
    for _ in 0..WARMUP_EPOCHS {
        fleet.step_epoch();
    }
    let mut expected: HashMap<u64, (PipelineQuery, SimTime)> = HashMap::new();
    let mut terminals = Vec::new();
    let mut saw_fence = false;
    for e in 0..PHASE_EPOCHS + DRAIN_EPOCHS {
        if e < PHASE_EPOCHS {
            let t = fleet.now();
            for &(ep, entry, code) in workload
                .iter()
                .filter(|&&(ep, _, _)| ep as u64 % PHASE_EPOCHS == e)
            {
                let _ = ep;
                let (q, tol) = decode(code);
                let ticket = fleet.submit(entry as usize % PROXIES, q, tol);
                expected.insert(ticket, (q, t));
            }
        }
        fleet.step_epoch();
        check_pump_log(&fleet, e);
        saw_fence |= fleet.is_fenced(minority);
        terminals.extend(fleet.take_completed());
    }

    prop_assert!(
        saw_fence,
        "the minority proxy must fence while partitioned (cut {cut_epochs} epochs)"
    );
    prop_assert!(
        !fleet.is_fenced(minority),
        "the healed proxy must regain quorum by the end of the drain"
    );
    prop_assert_eq!(
        terminals.len(),
        expected.len(),
        "every query must terminate exactly once — no hangs, no duplicates"
    );
    let leaks = fleet.leaks();
    prop_assert!(leaks.is_clean(), "leaked fleet state: {:?}", leaks);

    let total_epochs = WARMUP_EPOCHS + PHASE_EPOCHS + DRAIN_EPOCHS;
    let mut reference = Reference::build(seed, total_epochs);
    let now = fleet.now();
    let deadline_slack = SimDuration::from_mins(13) + EPOCH * 2;

    let (mut pulled, mut failed) = (0usize, 0usize);
    for c in terminals {
        let (q, t_sub) = expected.remove(&c.ticket).expect("unknown ticket");
        prop_assert!(
            c.completed_at <= t_sub + deadline_slack,
            "terminal after deadline + grace"
        );
        match c.answer.source() {
            AnswerSource::Failed => {
                failed += 1;
                if let PipelineAnswer::Scalar(a) = &c.answer {
                    prop_assert!(a.sigma.is_infinite(), "failed scalar must advertise sigma ∞");
                }
                prop_assert_eq!(
                    c.answer_age,
                    None,
                    "a failure must not claim a data age"
                );
            }
            AnswerSource::Pulled => {
                pulled += 1;
                prop_assert!(
                    c.answer_age.is_some(),
                    "every real answer must carry an explicit age: {:?}",
                    c
                );
                let r = reference.answer(q, now);
                match (&c.answer, &r) {
                    (PipelineAnswer::Series(a), PipelineAnswer::Series(r)) => {
                        prop_assert_eq!(r.source, AnswerSource::Pulled, "reference must pull");
                        prop_assert_eq!(
                            &a.samples,
                            &r.samples,
                            "fleet served different data than the blocking reference \
                             (forwarded: {}, served_by {})",
                            c.forwarded,
                            c.served_by
                        );
                    }
                    (PipelineAnswer::Scalar(a), PipelineAnswer::Scalar(r)) => {
                        prop_assert_eq!(r.source, AnswerSource::Pulled, "reference must pull");
                        prop_assert_eq!(a.value, r.value, "aggregate value diverged");
                        prop_assert_eq!(a.sigma, r.sigma, "aggregate sigma diverged");
                    }
                    _ => prop_assert!(false, "answer shape diverged from reference"),
                }
            }
            other => prop_assert!(
                false,
                "fleet produced {:?} — fast paths are disabled, only Pulled/Failed possible",
                other
            ),
        }
    }
    (pulled, failed)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8 })]

    /// Any workload × any downlink loss trace × any split-brain window:
    /// single uplink owner per epoch, fenced/dead proxies silent,
    /// answers value-identical or honestly failed, ages stamped, no
    /// leaks.
    #[test]
    fn split_brain_fences_minority_and_answers_stay_honest(
        workload in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..24),
        dl_req in proptest::collection::vec(any::<bool>(), 1..48),
        dl_rep in proptest::collection::vec(any::<bool>(), 1..48),
        minority in 0usize..PROXIES,
        cut_start in 0u64..PHASE_EPOCHS,
        cut_epochs in 14u64..48,
    ) {
        run_split_brain(&workload, dl_req, dl_rep, minority, cut_start, cut_epochs);
    }

    /// Clean downlinks, partition over before any deadline: everything
    /// submitted away from the minority side still completes with real,
    /// age-stamped answers.
    #[test]
    fn majority_side_keeps_serving_through_the_cut(
        workload in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..16),
        minority in 0usize..PROXIES,
    ) {
        let (pulled, failed) = run_split_brain(&workload, vec![true], vec![true], minority, 4, 20);
        prop_assert!(pulled + failed == workload.len());
        prop_assert!(
            pulled > 0 || workload.iter().all(|&(_, e, c)| {
                let gid = ((c as usize) / 8) % (PROXIES * SPP);
                e as usize % PROXIES == minority || gid / SPP == minority
            }),
            "majority-side queries must keep completing"
        );
    }
}
