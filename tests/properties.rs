//! Cross-crate property tests on system invariants that the per-crate
//! suites cannot express: conservation of samples through the sensor →
//! proxy pipeline, cache ordering under arbitrary interleavings, the
//! push-tolerance invariant under random workloads, and equivalence of
//! the indexed archive read path with a naive full scan.

use proptest::prelude::*;

use presto::archive::{ArchiveConfig, ArchiveStore};
use presto::net::LinkModel;
use presto::proxy::cache::{CacheSource, CachedSample, SensorCache};
use presto::proxy::{PrestoProxy, ProxyConfig};
use presto::sensor::{PushPolicy, SensorConfig, SensorNode, UplinkPayload};
use presto::sim::{EnergyLedger, SimDuration, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every sample fed to a batched sensor over a lossless link reaches
    /// the proxy exactly once, in order, regardless of batching interval.
    #[test]
    fn batched_pipeline_conserves_samples(
        interval_mins in 1u64..120,
        values in proptest::collection::vec(-20.0f64..60.0, 10..400),
    ) {
        let mut node = SensorNode::new(
            0,
            SensorConfig {
                push: PushPolicy::Batched {
                    interval: SimDuration::from_mins(interval_mins),
                    compression: None,
                },
                ..SensorConfig::default()
            },
            LinkModel::perfect(),
        );
        let mut received: Vec<(SimTime, f64)> = Vec::new();
        let mut last_t = SimTime::ZERO;
        for (i, &v) in values.iter().enumerate() {
            let t = SimTime::ZERO + SimDuration::from_secs(31) * i as u64;
            last_t = t;
            for msg in node.on_sample(t, v, None) {
                if let UplinkPayload::Batch { samples, .. } = msg.payload {
                    received.extend(samples);
                }
            }
        }
        if let Some(msg) = node.flush_batch(last_t, None) {
            if let UplinkPayload::Batch { samples, .. } = msg.payload {
                received.extend(samples);
            }
        }
        prop_assert_eq!(received.len(), values.len());
        // In order, with exact timestamps and f32-rounded values.
        for (i, (t, v)) in received.iter().enumerate() {
            prop_assert_eq!(*t, SimTime::ZERO + SimDuration::from_secs(31) * i as u64);
            prop_assert!((v - values[i]).abs() < 1e-3);
        }
    }

    /// The proxy cache stays time-sorted and bounded under arbitrary
    /// insertion orders and provenances.
    #[test]
    fn cache_is_always_sorted_and_bounded(
        capacity in 1usize..64,
        inserts in proptest::collection::vec((0u64..10_000, -50.0f64..50.0, 0u8..3), 0..200),
    ) {
        let mut cache = SensorCache::new(capacity);
        for (secs, v, src) in &inserts {
            cache.insert(CachedSample {
                t: SimTime::from_secs(*secs),
                value: *v,
                source: match src {
                    0 => CacheSource::Pushed,
                    1 => CacheSource::Batch,
                    _ => CacheSource::Pulled,
                },
            });
        }
        prop_assert!(cache.len() <= capacity);
        let all = cache.range(SimTime::ZERO, SimTime::from_secs(20_000));
        prop_assert!(all.windows(2).all(|w| w[0].t <= w[1].t));
        // latest_at agrees with a linear scan.
        for probe in [0u64, 100, 5_000, 9_999] {
            let t = SimTime::from_secs(probe);
            let expect = all.iter().rev().find(|s| s.t <= t).copied();
            prop_assert_eq!(cache.latest_at(t).map(|s| s.t), expect.map(|s| s.t));
        }
    }

    /// The model-driven push invariant: between pushes, sensor-side
    /// prediction error never exceeds the tolerance — for any random
    /// walk the sensor observes.
    #[test]
    fn push_tolerance_invariant_holds_for_random_walks(
        tolerance in 0.2f64..3.0,
        steps in proptest::collection::vec(-1.0f64..1.0, 50..300),
    ) {
        let mut node = SensorNode::new(
            0,
            SensorConfig {
                push: PushPolicy::ModelDriven { tolerance },
                ..SensorConfig::default()
            },
            LinkModel::perfect(),
        );
        let mut proxy = PrestoProxy::new(ProxyConfig {
            push_tolerance: tolerance,
            ..ProxyConfig::default()
        });
        proxy.register_sensor(0);

        // Without a model every sample pushes; the proxy therefore hears
        // everything and its cache equals the truth — the degenerate,
        // always-safe case. Install a trivial trend model to exercise
        // the conform/deviate split.
        let hist: Vec<(SimTime, f64)> = (0..200u64)
            .map(|i| (SimTime::from_secs(31 * i), 20.0))
            .collect();
        let (model, _) = presto::models::LinearTrendModel::train(&hist);
        use presto::models::Predictor as _;
        node.handle_downlink(
            SimTime::ZERO,
            &presto::sensor::DownlinkMsg::ModelUpdate {
                kind: presto::models::ModelKind::LinearTrend,
                params: model.encode_params(),
            },
            None,
        );
        prop_assert!(node.has_model());

        // Walk: each silent epoch, the sensor's replica (mirrored at the
        // proxy via pushes) must be within tolerance of the truth.
        let mut value = 20.0;
        let mut replica = presto::models::LinearTrendModel::decode_params(
            &model.encode_params(),
        ).expect("own params decode");
        let start = SimTime::from_secs(31 * 200);
        for (i, d) in steps.iter().enumerate() {
            value += d;
            let t = start + SimDuration::from_secs(31 * i as u64);
            let pushed = !node.on_sample(t, value, None).is_empty();
            if pushed {
                replica.observe(t, value);
            } else {
                // Silence ⇒ the shared replica predicts within tolerance.
                let err = (replica.predict(t).value - value).abs();
                prop_assert!(err <= tolerance + 1e-9, "silent err {} > {}", err, tolerance);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The indexed archive read path (segment index + page time
    /// directory + decoded-page LRU + streaming merge) returns results
    /// byte-identical to a naive decode-everything full scan, across
    /// randomized append / flush / reclaim / query schedules — including
    /// aged segments, out-of-order appends, and the RAM page-buffer
    /// tail.
    #[test]
    fn indexed_archive_queries_match_fullscan(
        capacity_kb in 4usize..24,
        aging in 0u8..2,
        ops in proptest::collection::vec((0u8..10, 0u64..100, -50.0f64..50.0), 40..400),
        windows in proptest::collection::vec((0u64..45_000, 0u64..20_000), 1..8),
    ) {
        let mut store = ArchiveStore::new(ArchiveConfig {
            capacity_bytes: capacity_kb * 1024,
            aging_enabled: aging == 1,
            ..ArchiveConfig::default()
        });
        let mut l = EnergyLedger::new();
        let mut now_s = 0u64;
        for &(kind, dt, v) in &ops {
            match kind {
                // Force a page program mid-schedule.
                6 => store.flush_page(&mut l).unwrap(),
                // An out-of-order tail (late-arriving timestamp).
                7 => now_s = now_s.saturating_sub(40),
                // A semantic event.
                5 => store
                    .append_event(SimTime::from_secs(now_s), (dt % 5) as u16, &[dt as u8], &mut l)
                    .unwrap(),
                // Mid-schedule query with the page buffer still dirty.
                8 => {
                    let a = SimTime::from_secs(now_s.saturating_sub(2_000));
                    let b = SimTime::from_secs(now_s + 500);
                    prop_assert_eq!(
                        store.query_range(a, b, &mut l).unwrap(),
                        store.query_range_fullscan(a, b, &mut l).unwrap(),
                    );
                }
                _ => store.append_scalar(SimTime::from_secs(now_s), v, &mut l).unwrap(),
            }
            now_s += dt;
        }
        for &(start_s, len_s) in &windows {
            let a = SimTime::from_secs(start_s);
            let b = SimTime::from_secs(start_s + len_s);
            prop_assert_eq!(
                store.query_range(a, b, &mut l).unwrap(),
                store.query_range_fullscan(a, b, &mut l).unwrap(),
                "range divergence on [{}s, {}s]", start_s, start_s + len_s,
            );
            prop_assert_eq!(
                store.query_events(a, b, &mut l).unwrap(),
                store.query_events_fullscan(a, b, &mut l).unwrap(),
                "event divergence on [{}s, {}s]", start_s, start_s + len_s,
            );
        }
    }
}
