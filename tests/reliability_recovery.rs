//! Reliability property: for any fabric loss trace and crash/blackout
//! schedule, post-recovery proxy answers over the affected window match
//! the sensor-archive ground truth — no silent gaps, errors bounded by
//! the recovery codec class.
//!
//! The archive is the spec: a crashed sensor archives nothing while
//! down (so neither must the proxy invent data there), while a
//! blacked-out sensor archives everything (so the proxy must recover
//! all of it).

use proptest::prelude::*;

use presto::core::{PrestoSystem, StoreQuery, SystemConfig, UnifiedStore};
use presto::net::{GilbertElliott, LossProcess};
use presto::reliability::{LivenessConfig, ReliabilityConfig};
use presto::sim::{EnergyLedger, FaultPlan, SimDuration, SimTime};

/// Tight-lease reliability config so outages resolve within test runs.
fn tight(loss_pct: u64, seed: u64) -> ReliabilityConfig {
    let mut r = ReliabilityConfig {
        heartbeat_every: SimDuration::from_mins(2),
        liveness: LivenessConfig {
            lease: SimDuration::from_mins(5),
            dead_after: SimDuration::from_mins(15),
        },
        ..ReliabilityConfig::default()
    };
    if loss_pct > 0 {
        let loss = loss_pct as f64 / 100.0;
        // Bursty chain with roughly the requested stationary loss.
        let pi_bad = (loss / 0.9).clamp(0.01, 0.9);
        r.fabric.up_loss = LossProcess::Gilbert(GilbertElliott {
            p_gb: pi_bad / (15.0 * (1.0 - pi_bad)),
            p_bg: 1.0 / 15.0,
            loss_good: 0.0,
            loss_bad: 0.9,
        });
        r.fabric.down_loss = LossProcess::Bernoulli(loss / 3.0);
    }
    r.fabric.seed = seed;
    r
}

/// Runs one scenario and audits the affected window.
fn run_and_audit(seed: u64, loss_pct: u64, start_min: u64, len_min: u64, crash: bool) {
    let outage_from = SimTime::from_mins(start_min);
    let outage_to = SimTime::from_mins(start_min + len_min);
    let faults = if crash {
        FaultPlan::none().with_crash(0, outage_from, outage_to)
    } else {
        FaultPlan::none().with_blackout_of(vec![0], outage_from, outage_to)
    };
    let mut sys = PrestoSystem::new(SystemConfig {
        proxies: 1,
        sensors_per_proxy: 2,
        seed,
        faults,
        reliability: tight(loss_pct, seed ^ 0x5EED),
        lab: presto::workloads::LabParams {
            events_per_day: 0.0,
            ..presto::workloads::LabParams::default()
        },
        ..SystemConfig::default()
    });
    // Run well past the outage so detection, reconnection, and the
    // recovery replay all complete.
    sys.run(SimDuration::from_mins(start_min + len_min) + SimDuration::from_hours(2));

    // The sensor must be back and any detected gap repaired.
    let rs = sys.recovery_stats();
    prop_assert_eq_impl(
        sys.gaps.pending().is_empty(),
        format!("repairs still pending after quiet period: {:?}", sys.gaps.pending()),
    );
    if rs.gaps_detected > 0 {
        assert!(rs.recoveries > 0, "gaps detected but never repaired: {rs:?}");
    }

    // Audit: every archived sample in the affected (outage) window
    // appears in the proxy's PAST answer within the recovery tolerance
    // class. The window is the outage span itself: that is exactly
    // what the sensor could not push and the recovery replay must have
    // restored. (Samples outside it that were never pushed are
    // *model-conforming silence* — correctly absent from the cache and
    // answered by extrapolation, not replay.)
    let win_from = outage_from;
    let win_to = outage_to;
    let mut ledger = EnergyLedger::new();
    let archived = sys.nodes[0][0]
        .archive_mut()
        .query_range_fullscan(win_from, win_to, &mut ledger)
        .expect("archive readable");
    if !crash {
        // Link-only outage: the archive must be gap-free over the
        // window (the sensor never stopped sampling).
        let expected = (win_to - win_from).div_duration(SimDuration::from_secs(31));
        assert!(
            archived.len() as u64 >= expected - 2,
            "blackout corrupted the archive itself: {} of {expected}",
            archived.len()
        );
    }
    let answer = UnifiedStore::new(&mut sys).query(StoreQuery::Past {
        sensor: 0,
        from: win_from,
        to: win_to,
        tolerance: 0.2,
    });
    let near = SimDuration::from_secs(1);
    let mut missing = 0u64;
    let mut max_err = 0.0f64;
    for a in &archived {
        let idx = answer.series.partition_point(|&(ts, _)| ts < a.timestamp);
        let hit = [idx.checked_sub(1), Some(idx)]
            .into_iter()
            .flatten()
            .filter_map(|i| answer.series.get(i))
            .find(|&&(ts, _)| {
                (if ts >= a.timestamp {
                    ts - a.timestamp
                } else {
                    a.timestamp - ts
                }) <= near
            });
        match hit {
            Some(&(_, v)) => max_err = max_err.max((v - a.value).abs()),
            None => missing += 1,
        }
    }
    assert_eq!(
        missing, 0,
        "silent gaps: {missing} of {} archived samples unanswered (seed {seed}, loss {loss_pct}%, crash {crash})",
        archived.len()
    );
    assert!(
        max_err <= 0.3,
        "post-recovery error {max_err} (seed {seed}, loss {loss_pct}%, crash {crash})"
    );
}

/// Tiny shim so the helper can assert outside the proptest macro body.
fn prop_assert_eq_impl(ok: bool, msg: String) {
    assert!(ok, "{msg}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn post_recovery_answers_match_archive_ground_truth(
        seed in 0u64..10_000,
        loss_pct in 0u64..40,
        start_min in 90u64..240,
        len_min in 10u64..90,
        crash in any::<bool>(),
    ) {
        run_and_audit(seed, loss_pct, start_min, len_min, crash);
    }
}

/// A fixed worst-ish case kept outside the property so it always runs
/// even if the sampled cases happen to be mild: heavy bursty loss plus
/// a long crash.
#[test]
fn heavy_loss_long_crash_still_recovers() {
    run_and_audit(77, 35, 120, 80, true);
}

/// Blackout twin of the fixed case: the archive is complete, so the
/// proxy must recover every sample the link swallowed.
#[test]
fn heavy_loss_long_blackout_still_recovers() {
    run_and_audit(78, 35, 120, 80, false);
}
